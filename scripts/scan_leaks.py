#!/usr/bin/env python3
"""Post-run leak scanner shared by the E13/E14/E15/E16 CI jobs.

One tool instead of four hand-rolled grep steps: scans benchmark run logs
for leak markers (fixed strings via ``--marker``, or one regex via
``--regex``) and ``/dev/shm`` for shared-memory segments the transports
must always unlink (``--shm-prefix``, default ``sigshard-``/``sigres-``).

Exit codes: 0 clean, 1 leak found, 2 usage error (a ``--log`` file does not
exist — in CI that means the step producing it silently changed, which must
fail loudly, not scan nothing and pass).  Findings are emitted both as
plain lines and as GitHub ``::error::`` annotations.

Examples (matching the CI jobs):

    python scripts/scan_leaks.py --log e13-run.log
    python scripts/scan_leaks.py --log e16-chaos.log --log e16-run.log
    python scripts/scan_leaks.py --log e15-run.log \
        --marker "UNEXPECTED KERNEL FALLBACK"
    python scripts/scan_leaks.py --log e14-run.log --no-shm \
        --regex "LEAKED|Task was destroyed but it is pending|unclosed.*socket|ResourceWarning"
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

#: Fixed strings the transport benchmarks print when a handle survives.
DEFAULT_MARKERS = ["LEAKED SEGMENT", "LEAKED SOCKET"]

#: Segment-name prefixes the shm transport owns (transport.py / net.py).
DEFAULT_SHM_PREFIXES = ["sigshard-", "sigres-"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--log",
        action="append",
        default=[],
        metavar="FILE",
        help="run log to scan (repeatable); missing file = exit 2",
    )
    parser.add_argument(
        "--marker",
        action="append",
        default=None,
        metavar="STRING",
        help=f"fixed leak marker (repeatable; default: {DEFAULT_MARKERS})",
    )
    parser.add_argument(
        "--regex",
        metavar="PATTERN",
        help="regex leak pattern scanned in addition to the markers",
    )
    parser.add_argument(
        "--shm-prefix",
        action="append",
        default=None,
        metavar="PREFIX",
        help=f"segment-name prefix to scan for (default: {DEFAULT_SHM_PREFIXES})",
    )
    parser.add_argument(
        "--shm-dir",
        default="/dev/shm",
        metavar="DIR",
        help="shared-memory mount to scan (tests point this at a tmpdir)",
    )
    parser.add_argument(
        "--no-shm",
        action="store_true",
        help="skip the shared-memory scan (jobs that never touch segments)",
    )
    return parser


def _error(message: str) -> None:
    print(f"::error::{message}")


def scan_log(path: Path, markers: list, regex) -> list:
    """Leak lines in *path*: ``(lineno, line)`` for each marker/regex hit."""
    hits = []
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8", errors="replace").splitlines(), 1
    ):
        if any(marker in line for marker in markers) or (regex and regex.search(line)):
            hits.append((lineno, line.strip()))
    return hits


def scan_shm(shm_dir: Path, prefixes: list) -> list:
    """Leaked segment names under *shm_dir* matching any owned prefix."""
    if not shm_dir.is_dir():
        return []
    return sorted(
        entry.name
        for entry in shm_dir.iterdir()
        if any(entry.name.startswith(prefix) for prefix in prefixes)
    )


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    markers = DEFAULT_MARKERS if args.marker is None else args.marker
    prefixes = DEFAULT_SHM_PREFIXES if args.shm_prefix is None else args.shm_prefix
    regex = re.compile(args.regex) if args.regex else None

    leaks = 0
    for name in args.log:
        path = Path(name)
        if not path.is_file():
            _error(f"scan_leaks: log file missing: {name}")
            return 2
        for lineno, line in scan_log(path, markers, regex):
            _error(f"{name}:{lineno}: {line}")
            leaks += 1

    if not args.no_shm:
        for segment in scan_shm(Path(args.shm_dir), prefixes):
            _error(f"leaked shared-memory segment: {args.shm_dir}/{segment}")
            leaks += 1

    if leaks:
        print(f"{leaks} leak(s) found.")
        return 1
    scanned = ", ".join(args.log) if args.log else "no logs"
    shm = "shm skipped" if args.no_shm else f"shm clean ({args.shm_dir})"
    print(f"no leaks ({scanned}; {shm}).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
