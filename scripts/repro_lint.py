#!/usr/bin/env python3
"""repro-lint launcher that works without PYTHONPATH=src.

Equivalent to ``PYTHONPATH=src python -m repro.analysis``; see
``python scripts/repro_lint.py --help`` (and ``--explain RL00x`` /
``--knobs``).  CI runs the module form; this wrapper is for humans.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.cli import main  # noqa: E402 - path bootstrap first

if __name__ == "__main__":
    # Default the lint root to the repo root so the wrapper behaves the same
    # from any working directory.
    argv = sys.argv[1:]
    if "--root" not in argv:
        argv = ["--root", str(REPO_ROOT), *argv]
    sys.exit(main(argv))
