#!/usr/bin/env python3
"""Fail CI when README or docs link to files that do not exist.

Scans the repo's user-facing markdown (README.md, docs/*.md, ROADMAP.md,
CHANGES.md) for inline links and verifies every *relative* target resolves to
a real file or directory (anchors and external URLs are ignored; an anchor on
a relative link is stripped before checking).  Exits non-zero listing every
broken link so the CI docs job fails loudly instead of shipping dead
references.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Markdown files whose links must resolve (paths relative to the repo root).
DOC_FILES = [
    "README.md",
    "ROADMAP.md",
    "CHANGES.md",
    *sorted(p.relative_to(REPO_ROOT) for p in (REPO_ROOT / "docs").glob("*.md")),
]

#: Inline markdown links: [text](target). Images share the syntax.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def check_file(path: Path) -> list[str]:
    broken = []
    for line_number, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        for target in _LINK.findall(line):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            resolved = (path.parent / relative).resolve()
            if not resolved.exists():
                broken.append(f"{path.relative_to(REPO_ROOT)}:{line_number}: broken link -> {target}")
    return broken


def main() -> int:
    broken: list[str] = []
    checked = 0
    for name in DOC_FILES:
        path = REPO_ROOT / name
        if not path.exists():
            continue
        checked += 1
        broken.extend(check_file(path))
    if broken:
        print("\n".join(broken))
        print(f"\n{len(broken)} broken link(s) across {checked} file(s).")
        return 1
    print(f"All relative links resolve across {checked} markdown file(s).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
