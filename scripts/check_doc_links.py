#!/usr/bin/env python3
"""Fail CI when README or docs link to files — or anchors — that do not exist.

Scans the repo's user-facing markdown (README.md, docs/*.md, ROADMAP.md,
CHANGES.md) for inline links and verifies:

* every *relative* target resolves to a real file or directory;
* every ``#anchor`` fragment — same-file (``#section``) or on a relative
  markdown link (``GUIDE.md#section``) — matches a heading in the target
  file, using GitHub's slug rules (lowercased, punctuation stripped, spaces
  to hyphens, duplicate slugs suffixed ``-1``, ``-2``, ...);
* the generated ``REPRO_*`` knob table embedded in ``docs/SERVING.md``
  matches the registry in ``repro.analysis.knobs`` (regenerate with
  ``python scripts/repro_lint.py --knobs``).

External URLs are ignored.  Exits non-zero listing every broken link or
anchor so the CI docs job fails loudly instead of shipping dead references.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.knobs import embedded_table_problems  # noqa: E402 - path bootstrap first

#: Markdown files carrying a generated knob table that must match the registry.
KNOB_TABLE_FILES = ["docs/SERVING.md"]

#: Markdown files whose links must resolve (paths relative to the repo root).
DOC_FILES = [
    "README.md",
    "ROADMAP.md",
    "CHANGES.md",
    *sorted(p.relative_to(REPO_ROOT) for p in (REPO_ROOT / "docs").glob("*.md")),
]

#: Inline markdown links: [text](target). Images share the syntax.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: ATX headings: one to six #, a space, then the title.
_HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*$")

#: Code fence delimiters; headings inside fenced blocks are not headings.
_FENCE = re.compile(r"^\s*(```|~~~)")


def _slugify(title: str, seen: dict) -> str:
    """GitHub's heading-anchor algorithm (close enough for ASCII docs)."""
    slug = title.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug)
    slug = slug.replace(" ", "-")
    count = seen.get(slug, 0)
    seen[slug] = count + 1
    return slug if count == 0 else f"{slug}-{count}"


def markdown_anchors(path: Path) -> set:
    """All heading anchors a markdown file exposes."""
    anchors = set()
    seen: dict = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING.match(line)
        if match:
            anchors.add(_slugify(match.group(2), seen))
    return anchors


def check_file(path: Path, anchor_cache: dict) -> list:
    def anchors_of(markdown_path: Path) -> set:
        resolved = markdown_path.resolve()
        if resolved not in anchor_cache:
            anchor_cache[resolved] = markdown_anchors(resolved)
        return anchor_cache[resolved]

    broken = []
    in_fence = False
    for line_number, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        # Fenced code blocks are examples, not live links — same rule the
        # heading scanner applies.
        if _FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for target in _LINK.findall(line):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            where = f"{path.relative_to(REPO_ROOT)}:{line_number}"
            if target.startswith("#"):
                # Same-file anchor.
                if target[1:] not in anchors_of(path):
                    broken.append(f"{where}: broken anchor -> {target}")
                continue
            relative, _, fragment = target.partition("#")
            if not relative:
                continue
            resolved = (path.parent / relative).resolve()
            if not resolved.exists():
                broken.append(f"{where}: broken link -> {target}")
                continue
            if fragment and resolved.suffix.lower() == ".md":
                if fragment not in anchors_of(resolved):
                    broken.append(f"{where}: broken anchor -> {target}")
    return broken


def main() -> int:
    broken = []
    checked = 0
    anchor_cache: dict = {}
    for name in DOC_FILES:
        path = REPO_ROOT / name
        if not path.exists():
            continue
        checked += 1
        broken.extend(check_file(path, anchor_cache))
    for name in KNOB_TABLE_FILES:
        path = REPO_ROOT / name
        if not path.exists():
            continue
        for problem in embedded_table_problems(path.read_text(encoding="utf-8")):
            broken.append(f"{name}: knob table -> {problem}")
    if broken:
        print("\n".join(broken))
        print(f"\n{len(broken)} broken link(s)/anchor(s) across {checked} file(s).")
        return 1
    print(f"All relative links and anchors resolve across {checked} markdown file(s).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
