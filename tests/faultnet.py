"""Reusable fault-injection TCP proxy for the framed block protocol.

``FaultProxy`` sits between a :class:`~repro.serving.net.NetTransport`
client and a :class:`~repro.serving.net.BlockWorkerServer`, parses the
``SGN1`` frames flowing through it, and injects faults at frame *and* byte
granularity:

* ``drop`` — swallow a frame entirely (the other side waits → deadline);
* ``delay`` — hold a frame for ``delay_seconds`` before forwarding;
* ``truncate`` — forward only the first ``keep_bytes`` bytes of a frame,
  then cut the connection (a torn frame);
* ``corrupt`` — flip one byte at ``corrupt_offset`` inside the frame
  (header offsets break magic/length, payload offsets break the crc);
* ``kill`` — cut both directions the moment the frame is seen
  (mid-shard peer death), also available time-independently via
  ``kill_after_frames=N`` (forward N frames, kill on the next).

Rules match ``(direction, frame_index)`` — per-connection counters, with
``conn_index`` optionally pinning a rule to the Nth accepted connection —
and every injected fault is recorded in ``proxy.faults`` so tests assert
exactly what fired.  The proxy is deliberately dependency-free and reusable
by any test that wants to hurt the wire (chaos suite, E16 chaos leg).
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass

from repro.serving.net import FRAME_HEADER

#: Direction names: client→server (shards) and server→client (results).
C2S = "c2s"
S2C = "s2c"


@dataclass
class Rule:
    """One fault to inject; see the module docstring for action semantics."""

    direction: str
    frame_index: int
    action: str
    delay_seconds: float = 0.0
    keep_bytes: int = 0
    corrupt_offset: int = 0
    #: Only fire on the Nth accepted connection (None = any connection).
    conn_index: int | None = None

    def matches(self, direction: str, frame_index: int, conn_index: int) -> bool:
        return (
            self.direction == direction
            and self.frame_index == frame_index
            and (self.conn_index is None or self.conn_index == conn_index)
        )


@dataclass
class _ConnState:
    """Shared between the two pump threads of one proxied connection."""

    index: int


class FaultProxy:
    """A frame-aware TCP proxy injecting faults per the configured rules."""

    def __init__(
        self,
        upstream: tuple,
        rules=(),
        kill_after_frames: int | None = None,
        host: str = "127.0.0.1",
    ) -> None:
        self.upstream = (str(upstream[0]), int(upstream[1]))
        self.rules = list(rules)
        self.kill_after_frames = kill_after_frames
        self._requested_host = host
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._threads: list = []
        self._socks: set = set()
        self._lock = threading.Lock()
        self._running = False
        self._conn_counter = 0
        #: (direction, frame_index, action) per injected fault, in order.
        self.faults: list = []
        self.stats = {"connections": 0, "frames_forwarded": 0, "kills": 0}

    # -------------------------------------------------------------- lifecycle
    @property
    def address(self) -> tuple:
        if self._listener is None:
            raise RuntimeError("proxy not started")
        return self._listener.getsockname()[:2]

    @property
    def spec(self) -> str:
        host, port = self.address
        return f"tcp://{host}:{port}"

    def start(self) -> "FaultProxy":
        if self._running:
            return self
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._requested_host, 0))
        listener.listen(32)
        # Same trick as BlockWorkerServer: close() does not wake a blocked
        # accept(), a short timeout lets the loop observe stop().
        listener.settimeout(0.25)
        self._listener = listener
        self._running = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="faultproxy-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        listener, self._listener = self._listener, None
        if listener is not None:
            listener.close()
        with self._lock:
            socks = list(self._socks)
        for sock in socks:
            self._hard_close(sock)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
            self._accept_thread = None
        for thread in self._threads:
            thread.join(timeout=5)
        self._threads.clear()

    def __enter__(self) -> "FaultProxy":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ---------------------------------------------------------------- pumping
    def _accept_loop(self) -> None:
        listener = self._listener
        while self._running and listener is not None:
            try:
                client, _addr = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            try:
                server = socket.create_connection(self.upstream, timeout=5)
            except OSError:
                client.close()
                continue
            # Pump reads block until EOF or stop()'s shutdown; a lingering
            # connect timeout would tear down idle proxied connections.
            server.settimeout(None)
            client.settimeout(None)
            with self._lock:
                conn_index = self._conn_counter
                self._conn_counter += 1
                self.stats["connections"] += 1
                self._socks.update((client, server))
                state = _ConnState(index=conn_index)
                for src, dst, direction in ((client, server, C2S), (server, client, S2C)):
                    thread = threading.Thread(
                        target=self._pump,
                        args=(src, dst, direction, state),
                        name=f"faultproxy-{direction}-{conn_index}",
                        daemon=True,
                    )
                    self._threads.append(thread)
                    thread.start()

    @staticmethod
    def _read_exact(sock: socket.socket, n: int):
        chunks = []
        got = 0
        while got < n:
            try:
                chunk = sock.recv(min(n - got, 1 << 20))
            except OSError:
                return None
            if not chunk:
                return None
            chunks.append(chunk)
            got += len(chunk)
        return b"".join(chunks)

    def _hard_close(self, sock: socket.socket) -> None:
        try:
            sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        sock.close()
        with self._lock:
            self._socks.discard(sock)

    def _match(self, direction: str, frame_index: int, conn_index: int):
        for rule in self.rules:
            if rule.matches(direction, frame_index, conn_index):
                return rule
        return None

    def _pump(self, src, dst, direction: str, state: _ConnState) -> None:
        frame_index = 0
        try:
            while self._running:
                header = self._read_exact(src, FRAME_HEADER.size)
                if header is None:
                    break
                _magic, _msg_type, length, _crc = FRAME_HEADER.unpack(header)
                payload = self._read_exact(src, length)
                if payload is None:
                    break
                frame = header + payload
                rule = self._match(direction, frame_index, state.index)
                this_index, frame_index = frame_index, frame_index + 1
                if rule is not None:
                    with self._lock:
                        self.faults.append((direction, this_index, rule.action))
                    if rule.action == "drop":
                        continue
                    if rule.action == "kill":
                        self.stats["kills"] += 1
                        break
                    if rule.action == "truncate":
                        try:
                            dst.sendall(frame[: rule.keep_bytes])
                        except OSError:
                            pass
                        break
                    if rule.action == "delay":
                        time.sleep(rule.delay_seconds)
                    elif rule.action == "corrupt":
                        mutated = bytearray(frame)
                        mutated[rule.corrupt_offset] ^= 0xFF
                        frame = bytes(mutated)
                if self.kill_after_frames is not None:
                    # Global budget across connections and directions:
                    # forward N frames total, kill on the next one seen.
                    with self._lock:
                        exhausted = self.stats["frames_forwarded"] >= self.kill_after_frames
                        if exhausted:
                            self.stats["kills"] += 1
                    if exhausted:
                        break
                try:
                    dst.sendall(frame)
                except OSError:
                    break
                with self._lock:
                    self.stats["frames_forwarded"] += 1
        finally:
            # Any exit tears down both directions: a fault in one leg must
            # look like a dead peer, not a half-open socket.
            self._hard_close(src)
            self._hard_close(dst)
