"""Unit tests for the synthetic corpora (generators, GitTables-like,
WebTables-like, shift scenarios) and the corpus container."""

from __future__ import annotations

import random

import pytest

from repro.core.errors import CorpusError
from repro.core.table import Column, Table
from repro.corpus import (
    GITTABLES_THEMES,
    GitTablesConfig,
    GitTablesGenerator,
    OOD_PROFILES,
    TYPE_PROFILES,
    TableCorpus,
    WebTablesGenerator,
    build_covariate_shift_corpus,
    build_label_shift_corpus,
    build_ood_corpus,
    build_scenario,
    generatable_types,
    generate_values,
    ood_types,
    profile_for,
)
from repro.corpus.webtables import WebTablesConfig


class TestValueGenerators:
    def test_every_profile_generates_values(self):
        rng = random.Random(0)
        for type_name in generatable_types():
            values = generate_values(type_name, rng, 5)
            assert len(values) == 5
            assert all(isinstance(value, str) and value for value in values)

    def test_every_profile_supports_shifted_style(self):
        rng = random.Random(1)
        for type_name in generatable_types():
            values = generate_values(type_name, rng, 3, style="shifted")
            assert len(values) == 3

    def test_ood_profiles_generate_values(self):
        rng = random.Random(2)
        for type_name in ood_types():
            values = OOD_PROFILES[type_name].generate(rng, 4, "default")
            assert len(values) == 4

    def test_ood_types_are_not_in_the_ontology(self, ontology):
        assert all(type_name not in ontology for type_name in ood_types())

    def test_unknown_type_rejected(self):
        with pytest.raises(CorpusError):
            generate_values("definitely_not_a_type", random.Random(0), 3)

    def test_negative_count_rejected(self):
        with pytest.raises(CorpusError):
            generate_values("city", random.Random(0), -1)

    def test_profiles_have_headers(self):
        for profile in TYPE_PROFILES.values():
            assert profile.headers, f"{profile.type_name} has no headers"

    def test_header_pool_styles(self):
        profile = profile_for("salary")
        assert profile.header_pool("dirty") == profile.dirty_headers
        assert profile.header_pool("verbose") == profile.verbose_headers
        assert profile.header_pool("clean") == profile.headers

    def test_generation_is_reproducible(self):
        first = generate_values("email", random.Random(42), 10)
        second = generate_values("email", random.Random(42), 10)
        assert first == second


class TestGitTablesGenerator:
    @pytest.fixture(scope="class")
    def corpus(self):
        return GitTablesGenerator(GitTablesConfig(num_tables=25, seed=3)).generate_corpus()

    def test_table_count(self, corpus):
        assert len(corpus) == 25

    def test_shapes_within_configured_bounds(self, corpus):
        config = GitTablesConfig()
        for table in corpus:
            assert config.min_columns <= table.num_columns <= config.max_columns
            assert config.min_rows <= table.num_rows <= config.max_rows

    def test_columns_are_annotated_with_leaf_types(self, corpus, ontology):
        labeled = corpus.labeled_columns()
        assert len(labeled) > 0.9 * corpus.num_columns
        for entry in labeled:
            assert entry.label in ontology

    def test_ground_truth_matches_generator_metadata(self, corpus):
        for entry in corpus.labeled_columns():
            assert entry.column.metadata.get("generator_type") == entry.label

    def test_metadata_theme_recorded(self, corpus):
        themes = {theme.name for theme in GITTABLES_THEMES}
        for table in corpus:
            assert table.metadata["theme"] in themes
            assert table.metadata["source"] == "gittables-like"

    def test_reproducible_with_seed(self):
        first = GitTablesGenerator(GitTablesConfig(num_tables=5, seed=9)).generate_corpus()
        second = GitTablesGenerator(GitTablesConfig(num_tables=5, seed=9)).generate_corpus()
        assert [t.name for t in first] == [t.name for t in second]
        assert [t.column_names for t in first] == [t.column_names for t in second]

    def test_invalid_config_rejected(self):
        with pytest.raises(CorpusError):
            GitTablesGenerator(GitTablesConfig(min_columns=5, max_columns=2))
        with pytest.raises(CorpusError):
            GitTablesGenerator(GitTablesConfig(min_rows=10, max_rows=1))
        with pytest.raises(CorpusError):
            GitTablesConfig(themes=("no_such_theme",)).selected_themes()

    def test_theme_restriction(self):
        config = GitTablesConfig(num_tables=5, themes=("medical_records",), seed=1)
        corpus = GitTablesGenerator(config).generate_corpus()
        assert all(table.metadata["theme"] == "medical_records" for table in corpus)

    def test_null_injection(self):
        config = GitTablesConfig(num_tables=10, null_cell_probability=0.3, seed=5)
        corpus = GitTablesGenerator(config).generate_corpus()
        null_fractions = [entry.column.null_fraction() for entry in corpus.columns()]
        assert sum(null_fractions) / len(null_fractions) > 0.15


class TestWebTablesGenerator:
    @pytest.fixture(scope="class")
    def corpus(self):
        return WebTablesGenerator(WebTablesConfig(num_tables=20, seed=6)).generate_corpus()

    def test_tables_are_small(self, corpus):
        for table in corpus:
            assert table.num_columns <= 6
            assert table.num_rows <= 30

    def test_web_tables_cover_fewer_types_than_database_tables(self, corpus):
        covered = WebTablesGenerator.covered_types()
        assert covered <= set(TYPE_PROFILES)
        # The web corpus deliberately misses most enterprise types.
        assert len(covered) < 0.5 * len(TYPE_PROFILES)
        assert "invoice_number" not in covered
        assert "iban" not in covered

    def test_headers_are_verbose_style(self, corpus):
        # Verbose headers are title-cased human phrases, not snake_case codes.
        headers = [column.name for table in corpus for column in table.columns]
        assert any(" " in header or header.istitle() for header in headers)

    def test_invalid_config(self):
        with pytest.raises(CorpusError):
            WebTablesGenerator(WebTablesConfig(min_columns=4, max_columns=2))


class TestShiftScenarios:
    def test_covariate_shift_keeps_known_labels(self, ontology):
        corpus = build_covariate_shift_corpus(num_tables=5, seed=1)
        for entry in corpus.labeled_columns():
            assert entry.label in ontology

    def test_label_shift_header_disagrees_with_label(self):
        corpus = build_label_shift_corpus(num_tables=10, seed=2)
        shifted = [
            entry for entry in corpus.columns() if "label_shift" in entry.column.metadata
        ]
        assert len(shifted) == 10
        for entry in shifted:
            header_type, true_type = entry.column.metadata["label_shift"].split("->")
            assert entry.label == true_type
            assert header_type != true_type

    def test_ood_corpus_marks_ood_columns(self, ontology):
        corpus = build_ood_corpus(num_tables=5, seed=3)
        ood_columns = [entry for entry in corpus.columns() if str(entry.label).startswith("ood:")]
        in_dist = [entry for entry in corpus.columns() if entry.label and not str(entry.label).startswith("ood:")]
        assert ood_columns and in_dist
        for entry in ood_columns:
            assert entry.label.split(":", 1)[1] not in ontology

    def test_build_scenario_dispatch(self):
        for kind in ("covariate", "label", "ood"):
            scenario = build_scenario(kind, num_tables=3)
            assert scenario.kind == kind
            assert len(scenario.corpus) > 0
        with pytest.raises(CorpusError):
            build_scenario("nonsense")


class TestTableCorpus:
    @pytest.fixture()
    def corpus(self) -> TableCorpus:
        tables = [
            Table([Column("a", ["1"], semantic_type="id"), Column("b", ["x"], semantic_type="name")], name="t1"),
            Table([Column("c", ["2"], semantic_type="id"), Column("d", ["y"])], name="t2"),
        ]
        return TableCorpus(tables, name="unit")

    def test_counts(self, corpus):
        assert len(corpus) == 2
        assert corpus.num_columns == 4
        assert corpus.num_rows == 2

    def test_label_distribution(self, corpus):
        assert corpus.label_distribution() == {"id": 2, "name": 1}
        assert corpus.semantic_types() == ["id", "name"]

    def test_columns_of_type(self, corpus):
        assert len(corpus.columns_of_type("id")) == 2

    def test_labeled_columns_have_provenance(self, corpus):
        entry = corpus.labeled_columns()[0]
        assert entry.table.name == "t1"
        assert entry.column_index == 0
        assert "name" in entry.neighbor_types

    def test_merge_and_filter(self, corpus):
        merged = corpus.merge(corpus)
        assert len(merged) == 4
        filtered = corpus.filter_tables(lambda table: table.name == "t1")
        assert len(filtered) == 1

    def test_restrict_types_clears_other_labels(self, corpus):
        restricted = corpus.restrict_types(["id"])
        assert restricted.label_distribution() == {"id": 2}
        # Original untouched.
        assert corpus.label_distribution()["name"] == 1

    def test_split_no_leakage_and_bounds(self):
        corpus = GitTablesGenerator(GitTablesConfig(num_tables=10, seed=8)).generate_corpus()
        train, test = corpus.split(0.7, seed=1)
        assert len(train) + len(test) == 10
        assert len(train) >= 1 and len(test) >= 1
        assert {id(t) for t in train}.isdisjoint({id(t) for t in test})

    def test_split_invalid_fraction(self, corpus):
        with pytest.raises(CorpusError):
            corpus.split(1.5)

    def test_sample_tables(self, corpus):
        assert len(corpus.sample_tables(1, seed=0)) == 1
        assert len(corpus.sample_tables(10)) == 2

    def test_round_trip_dict(self, corpus):
        restored = TableCorpus.from_dict(corpus.to_dict())
        assert len(restored) == 2
        assert restored.label_distribution() == corpus.label_distribution()

    def test_summary_keys(self, corpus):
        summary = corpus.summary()
        assert summary["tables"] == 2
        assert summary["distinct_types"] == 2
