"""Front end & SLOs: admission control, deadlines, cancellation, drain.

These tests pin the robustness contract of the serving front end: overload
is shed with explicit, typed rejections (never an unbounded queue), request
deadlines propagate end-to-end and expired work is discarded before its
cascade runs, client-side cancellation can never poison the worker loop or
skew the AIMD controller's latency observations, the SLO controller steps
the cascade confidence threshold c down under breach and recovers it as
load drains, and shutdown is bounded — past the drain deadline every
pending caller gets a typed error, not a hang.

Most tests drive the service with a stub typer whose latency/failures are
controlled explicitly, so they are deterministic on a 1-CPU container; the
HTTP round-trip parity tests use the real pretrained system.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import time

import pytest

from repro.core.errors import (
    ConfigurationError,
    DeadlineExceededError,
    OverloadedError,
    ServingError,
    ShutdownError,
)
from repro.core.prediction import TablePrediction
from repro.core.table import Table
from repro.serving import (
    AnnotationFrontend,
    AnnotationService,
    FrontendConfig,
    SloConfig,
    SloController,
    TokenBucket,
)
from repro.serving.service import _Request  # noqa: PLC2701 - white-box deadline test


def _table(name: str = "t") -> Table:
    return Table.from_columns_dict({"City": ["Berlin", "Paris"]}, name=name)


class _StubTyper:
    """A typer stand-in with controllable latency, failures, and threshold c."""

    def __init__(self, delay: float = 0.0):
        self.delay = delay
        self.fail = False
        self.confidence_threshold = 0.85
        self.calls = 0
        self.annotated_tables = 0

    def set_confidence_threshold(self, confidence_threshold: float) -> None:
        self.confidence_threshold = confidence_threshold

    def annotate_corpus(self, tables, customer_id=None, backend=None):
        self.calls += 1
        self.annotated_tables += len(tables)
        if self.delay:
            time.sleep(self.delay)
        if self.fail:
            raise RuntimeError("injected fault")
        return [TablePrediction(table_name=table.name) for table in tables]


# ----------------------------------------------------------------- token bucket
class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate=10.0, burst=2)
        assert bucket.acquire(0.0) == 0.0
        assert bucket.acquire(0.0) == 0.0
        wait = bucket.acquire(0.0)
        assert wait == pytest.approx(0.1)
        # One token refills after 1/rate seconds.
        assert bucket.acquire(0.1) == 0.0
        assert bucket.acquire(0.1) > 0.0

    def test_refill_never_exceeds_burst(self):
        bucket = TokenBucket(rate=100.0, burst=3)
        bucket.acquire(0.0)
        assert bucket.tokens == pytest.approx(2.0)
        bucket.acquire(1000.0)
        assert bucket.tokens == pytest.approx(2.0)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=0.0, burst=1)
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=1.0, burst=0.5)


# ------------------------------------------------------------------- SLO control
class TestSloController:
    def _controller(self, **overrides) -> tuple[_StubTyper, SloController]:
        config = SloConfig(
            latency_budget=0.1,
            window=16,
            min_samples=4,
            cooldown=1.0,
            step=0.05,
            min_confidence_threshold=0.70,
            recover_ratio=0.5,
            **overrides,
        )
        typer = _StubTyper()
        return typer, SloController(typer, config)

    def test_degrades_on_breach_and_journals(self):
        typer, controller = self._controller()
        for _ in range(4):
            controller.observe(0.5)
        assert controller.maybe_adjust(now=0.0) == "degrade"
        assert typer.confidence_threshold == pytest.approx(0.80)
        assert controller.is_degraded
        assert controller.degrade_steps == 1
        (entry,) = controller.journal
        assert entry["action"] == "degrade"
        assert entry["from"] == pytest.approx(0.85)
        assert entry["to"] == pytest.approx(0.80)
        assert entry["observed_percentile_seconds"] == pytest.approx(0.5)

    def test_needs_fresh_samples_and_cooldown(self):
        typer, controller = self._controller()
        for _ in range(3):
            controller.observe(0.5)
        # Not enough samples yet.
        assert controller.maybe_adjust(now=0.0) is None
        controller.observe(0.5)
        assert controller.maybe_adjust(now=0.0) == "degrade"
        # The adjustment reset the sample counter: re-measure before acting.
        assert controller.maybe_adjust(now=10.0) is None
        for _ in range(4):
            controller.observe(0.5)
        # Fresh samples but still inside the cooldown window.
        assert controller.maybe_adjust(now=0.5) is None
        assert controller.maybe_adjust(now=10.0) == "degrade"
        assert typer.confidence_threshold == pytest.approx(0.75)

    def test_floor_is_hard(self):
        typer, controller = self._controller()
        for round_index in range(10):
            for _ in range(4):
                controller.observe(0.5)
            controller.maybe_adjust(now=100.0 * (round_index + 1))
        assert typer.confidence_threshold == pytest.approx(0.70)
        # At the floor with a still-breaching tail: no action, no journal spam.
        for _ in range(4):
            controller.observe(0.5)
        assert controller.maybe_adjust(now=1e6) is None

    def test_recovers_to_baseline_and_not_past_it(self):
        typer, controller = self._controller()
        for _ in range(4):
            controller.observe(0.5)
        controller.maybe_adjust(now=0.0)
        assert controller.is_degraded
        for round_index in range(10):
            for _ in range(4):
                controller.observe(0.01)
            controller.maybe_adjust(now=100.0 * (round_index + 1))
        assert typer.confidence_threshold == pytest.approx(controller.baseline)
        assert not controller.is_degraded
        assert controller.recover_steps >= 1
        actions = [entry["action"] for entry in controller.journal]
        # Old breach samples age out of the sliding window before recovery
        # starts, so there may be several degrade steps — but every one of
        # them is undone and the journal ends on a recovery.
        assert actions[0] == "degrade"
        assert actions[-1] == "recover"
        assert actions.count("degrade") == actions.count("recover")

    def test_breach_during_cooldown_waits_then_fires(self):
        # A second breach arriving *inside* the cooldown window must not be
        # lost: the controller holds (None, threshold untouched) and then
        # fires the moment the cooldown expires, without needing yet another
        # batch of fresh samples.
        typer, controller = self._controller()
        for _ in range(4):
            controller.observe(0.5)
        assert controller.maybe_adjust(now=0.0) == "degrade"
        for _ in range(4):
            controller.observe(0.5)  # fresh breaching samples, still hot
        assert controller.maybe_adjust(now=0.5) is None  # inside cooldown=1.0
        assert typer.confidence_threshold == pytest.approx(0.80)
        assert controller.maybe_adjust(now=1.0) == "degrade"  # cooldown over
        assert typer.confidence_threshold == pytest.approx(0.75)
        assert [entry["action"] for entry in controller.journal] == [
            "degrade",
            "degrade",
        ]
        assert [(entry["from"], entry["to"]) for entry in controller.journal] == [
            (pytest.approx(0.85), pytest.approx(0.80)),
            (pytest.approx(0.80), pytest.approx(0.75)),
        ]

    def test_recovery_while_still_loaded_is_stepwise_and_journaled(self):
        # Latency dropping below the recover line while traffic keeps flowing:
        # the controller steps back up once per cooldown, never overshoots the
        # baseline, and the journal pins the exact degrade/recover sequence.
        typer, controller = self._controller()
        for _ in range(4):
            controller.observe(0.5)
        assert controller.maybe_adjust(now=0.0) == "degrade"
        assert controller.maybe_adjust(now=2.0) is None  # no fresh samples yet
        # Sustained fast traffic flushes the breach samples out of the
        # sliding window (window=16) while requests are still being served.
        for _ in range(16):
            controller.observe(0.01)
        assert controller.maybe_adjust(now=2.0) == "recover"
        assert typer.confidence_threshold == pytest.approx(0.85)
        assert not controller.is_degraded
        # Still loaded and still fast: at the baseline there is nothing to
        # recover to, so the controller idles instead of overshooting.
        for _ in range(4):
            controller.observe(0.01)
        assert controller.maybe_adjust(now=4.0) is None
        assert typer.confidence_threshold == pytest.approx(controller.baseline)
        assert [entry["action"] for entry in controller.journal] == [
            "degrade",
            "recover",
        ]
        (_, recovery) = controller.journal
        assert recovery["from"] == pytest.approx(0.80)
        assert recovery["to"] == pytest.approx(0.85)
        assert recovery["observed_percentile_seconds"] == pytest.approx(0.01)

    def test_no_action_between_budget_and_recover_band(self):
        typer, controller = self._controller()
        # 0.06 is under the 0.1 budget but above the 0.05 recover line.
        for _ in range(4):
            controller.observe(0.06)
        assert controller.maybe_adjust(now=0.0) is None
        assert typer.confidence_threshold == pytest.approx(0.85)

    def test_snapshot_shape(self):
        _, controller = self._controller()
        controller.observe(0.2)
        snapshot = controller.snapshot()
        assert snapshot["confidence_threshold"] == pytest.approx(0.85)
        assert snapshot["baseline"] == pytest.approx(0.85)
        assert snapshot["degraded"] is False
        assert snapshot["observed_percentile_seconds"] == pytest.approx(0.2)
        assert snapshot["transitions"] == []

    def test_invalid_configs(self):
        typer = _StubTyper()
        for kwargs in (
            {"latency_budget": 0.0},
            {"percentile": 1.5},
            {"min_samples": 0},
            {"min_samples": 99, "window": 16},
            {"step": 0.0},
            {"recover_ratio": 1.0},
            {"min_confidence_threshold": 1.5},
        ):
            with pytest.raises(ConfigurationError):
                SloController(typer, SloConfig(**kwargs))
        # A baseline already below the floor has nothing to degrade to.
        typer.confidence_threshold = 0.5
        with pytest.raises(ConfigurationError):
            SloController(typer, SloConfig(min_confidence_threshold=0.7))


# ----------------------------------------------------------- service: deadlines
class TestServiceDeadlines:
    def test_deadline_expires_while_queued(self):
        typer = _StubTyper(delay=0.15)

        async def drive():
            async with AnnotationService(typer, max_batch_delay=0.0) as service:
                blocker = asyncio.ensure_future(service.annotate(_table("blocker")))
                await asyncio.sleep(0.02)  # the blocker batch is now in flight
                with pytest.raises(DeadlineExceededError):
                    await service.annotate(_table("doomed"), deadline=0.05)
                await blocker
                # The worker survived: later requests are served normally.
                follow_up = await service.annotate(_table("after"))
                return service.stats, follow_up

        stats, follow_up = asyncio.run(drive())
        assert stats.timed_out_total == 1
        assert stats.cancelled_total == 0
        assert follow_up.table_name == "after"
        # The doomed request's cascade never ran.
        assert typer.annotated_tables == 2

    def test_worker_discards_already_expired_request(self):
        """A request that aged out in the queue is failed before its group runs."""
        typer = _StubTyper()

        async def drive():
            async with AnnotationService(typer, max_batch_delay=0.0) as service:
                now = time.monotonic()
                expired: asyncio.Future = asyncio.get_running_loop().create_future()
                await service._queue.put(  # noqa: SLF001 - deterministic worker-side expiry
                    _Request(_table("expired"), None, expired, now - 1.0, now - 0.5)
                )
                live = await service.annotate(_table("live"))
                assert isinstance(expired.exception(), DeadlineExceededError)
                return service.stats, live

        stats, live = asyncio.run(drive())
        assert stats.timed_out_total == 1
        assert live.table_name == "live"
        assert typer.annotated_tables == 1

    def test_zero_deadline_times_out_immediately(self):
        typer = _StubTyper()

        async def drive():
            async with AnnotationService(typer, max_batch_delay=0.0) as service:
                with pytest.raises(DeadlineExceededError):
                    await service.annotate(_table(), deadline=0.0)
                return service.stats.timed_out_total

        assert asyncio.run(drive()) == 1

    def test_negative_deadline_rejected(self):
        typer = _StubTyper()

        async def drive():
            async with AnnotationService(typer) as service:
                with pytest.raises(ConfigurationError):
                    await service.annotate(_table(), deadline=-1.0)

        asyncio.run(drive())

    def test_generous_deadline_serves_normally(self):
        typer = _StubTyper(delay=0.02)

        async def drive():
            async with AnnotationService(typer, max_batch_delay=0.0) as service:
                prediction = await service.annotate(_table("fine"), deadline=5.0)
                return prediction, service.stats

        prediction, stats = asyncio.run(drive())
        assert prediction.table_name == "fine"
        assert stats.timed_out_total == 0


# -------------------------------------------------------- service: cancellation
class TestServiceCancellation:
    def test_cancelled_while_queued_does_not_poison_worker(self):
        typer = _StubTyper(delay=0.12)

        async def drive():
            async with AnnotationService(typer, max_batch_delay=0.0) as service:
                blocker = asyncio.ensure_future(service.annotate(_table("blocker")))
                await asyncio.sleep(0.02)
                doomed = [
                    asyncio.ensure_future(service.annotate(_table(f"c{i}"), customer_id="t1"))
                    for i in range(2)
                ]
                await asyncio.sleep(0.02)  # both are queued behind the blocker
                for task in doomed:
                    task.cancel()
                await blocker
                results = await asyncio.gather(*doomed, return_exceptions=True)
                assert all(isinstance(r, asyncio.CancelledError) for r in results)
                follow_up = await service.annotate(_table("after"))
                return service.stats, follow_up

        stats, follow_up = asyncio.run(drive())
        assert stats.cancelled_total == 2
        assert follow_up.table_name == "after"
        # The cancelled group was never annotated, and never counted as served.
        assert typer.annotated_tables == 2
        assert stats.requests_total == 2

    def test_fully_cancelled_group_skips_aimd_observation(self):
        """A group whose every request was cancelled must not feed the AIMD
        controller a latency observation it never incurred."""
        typer = _StubTyper(delay=0.12)

        async def drive():
            async with AnnotationService(
                typer, max_batch_delay=0.0, adaptive=True
            ) as service:
                blocker = asyncio.ensure_future(service.annotate(_table("blocker")))
                await asyncio.sleep(0.02)
                doomed = asyncio.ensure_future(
                    service.annotate(_table("doomed"), customer_id="t1")
                )
                await asyncio.sleep(0.02)
                doomed.cancel()
                await blocker
                with pytest.raises(asyncio.CancelledError):
                    await doomed
                return service.stats

        stats = asyncio.run(drive())
        # The cancelled tenant's controller never observed a batch.
        assert "t1" not in stats.controllers
        assert stats.controllers["<global>"]["batches"] == 1

    def test_cancelled_mid_executor_is_harmless(self):
        typer = _StubTyper(delay=0.1)

        async def drive():
            async with AnnotationService(typer, max_batch_delay=0.0) as service:
                task = asyncio.ensure_future(service.annotate(_table("midflight")))
                await asyncio.sleep(0.03)  # the cascade is running on the executor
                task.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await task
                follow_up = await service.annotate(_table("after"))
                return follow_up

        assert asyncio.run(drive()).table_name == "after"

    def test_injected_fault_fails_requests_not_worker(self):
        typer = _StubTyper()

        async def drive():
            async with AnnotationService(typer, max_batch_delay=0.0) as service:
                typer.fail = True
                with pytest.raises(ServingError):
                    await service.annotate(_table("boom"))
                typer.fail = False
                recovered = await service.annotate(_table("after"))
                return service.stats, recovered

        stats, recovered = asyncio.run(drive())
        assert stats.errors_total == 1
        assert recovered.table_name == "after"


# ------------------------------------------------------- service: bounded drain
class TestServiceDrain:
    def test_bounded_drain_hard_cancels_with_typed_errors(self):
        typer = _StubTyper(delay=0.4)

        async def drive():
            service = await AnnotationService(typer, max_batch_delay=0.0).start()
            in_flight = asyncio.ensure_future(service.annotate(_table("inflight")))
            await asyncio.sleep(0.05)  # now running on the executor
            queued = asyncio.ensure_future(service.annotate(_table("queued")))
            await asyncio.sleep(0)
            started = time.monotonic()
            await service.shutdown(drain_timeout=0.1)
            drain_seconds = time.monotonic() - started
            results = await asyncio.gather(in_flight, queued, return_exceptions=True)
            return drain_seconds, results, service.is_running

        drain_seconds, results, running = asyncio.run(drive())
        assert drain_seconds < 0.3  # nowhere near the 0.4 s cascade
        assert all(isinstance(result, ShutdownError) for result in results)
        assert not running

    def test_unbounded_drain_still_serves_everything(self):
        typer = _StubTyper(delay=0.02)

        async def drive():
            service = await AnnotationService(typer, max_batch_delay=0.0).start()
            pending = [asyncio.ensure_future(service.annotate(_table(f"t{i}"))) for i in range(3)]
            await asyncio.sleep(0)
            await service.shutdown()
            return await asyncio.gather(*pending)

        results = asyncio.run(drive())
        assert [prediction.table_name for prediction in results] == ["t0", "t1", "t2"]

    def test_drain_of_idle_service_is_fast(self):
        typer = _StubTyper()

        async def drive():
            service = await AnnotationService(typer).start()
            started = time.monotonic()
            await service.shutdown(drain_timeout=5.0)
            return time.monotonic() - started

        assert asyncio.run(drive()) < 1.0

    def test_invalid_drain_timeout(self):
        typer = _StubTyper()

        async def drive():
            service = await AnnotationService(typer).start()
            try:
                with pytest.raises(ConfigurationError):
                    await service.shutdown(drain_timeout=-1.0)
            finally:
                await service.shutdown()

        asyncio.run(drive())


# ----------------------------------------------------------- service: SLO wiring
class TestServiceSloIntegration:
    def test_breach_degrades_then_recovery_restores(self):
        typer = _StubTyper(delay=0.05)
        config = SloConfig(
            latency_budget=0.02,
            window=8,
            min_samples=3,
            cooldown=0.0,
            step=0.05,
            min_confidence_threshold=0.70,
            recover_ratio=0.5,
        )

        async def drive():
            async with AnnotationService(
                typer, max_batch_delay=0.0, slo=SloConfig(**vars(config))
            ) as service:
                for index in range(4):
                    await service.annotate(_table(f"slow{index}"))
                degraded_c = typer.confidence_threshold
                degraded_batches = service.stats.degraded_batches
                typer.delay = 0.0
                # Enough fast traffic for the breach samples to age out of
                # the sliding window and for every degrade step to be undone.
                for index in range(24):
                    await service.annotate(_table(f"fast{index}"))
                summary = service.summary()
                return degraded_c, degraded_batches, summary

        degraded_c, degraded_batches, summary = asyncio.run(drive())
        assert degraded_c == pytest.approx(0.80)
        stats = summary["stats"]
        slo = summary["slo"]
        assert slo["transitions"][0]["action"] == "degrade"
        assert any(entry["action"] == "recover" for entry in slo["transitions"])
        assert typer.confidence_threshold == pytest.approx(0.85)
        # Batches annotated while degraded were counted as such.
        assert stats["degraded_batches"] >= 1
        assert degraded_batches >= 1
        assert stats["confidence_threshold"] == pytest.approx(0.85)

    def test_unloaded_service_never_degrades(self):
        typer = _StubTyper()

        async def drive():
            async with AnnotationService(
                typer, max_batch_delay=0.0, slo=SloConfig(latency_budget=0.5, min_samples=2)
            ) as service:
                for index in range(8):
                    await service.annotate(_table(f"t{index}"))
                return service.stats

        stats = asyncio.run(drive())
        assert typer.confidence_threshold == pytest.approx(0.85)
        assert stats.degraded_batches == 0

    def test_invalid_slo_argument(self):
        with pytest.raises(ConfigurationError):
            AnnotationService(_StubTyper(), slo="fast-please")


# ------------------------------------------------------------ frontend admission
class TestFrontendAdmission:
    def _frontend(self, typer, **config) -> AnnotationFrontend:
        service = AnnotationService(typer, max_batch_delay=0.0)
        return AnnotationFrontend(service, FrontendConfig(**config))

    def test_rate_limit_sheds_with_retry_after(self):
        typer = _StubTyper()
        frontend = self._frontend(typer, tenant_rate=0.001, tenant_burst=1)

        async def drive():
            async with frontend:
                await frontend.submit(_table(), customer_id="t1")
                with pytest.raises(OverloadedError) as excinfo:
                    await frontend.submit(_table(), customer_id="t1")
                # A different tenant has its own bucket.
                await frontend.submit(_table(), customer_id="t2")
                return excinfo.value

        shed = asyncio.run(drive())
        assert shed.retry_after > 0.0
        assert frontend.stats.shed_rate_limited == 1
        assert frontend.stats.admitted == 2
        assert frontend.service.stats.shed_total == 1

    def test_tenant_pending_bound_sheds(self):
        typer = _StubTyper(delay=0.15)
        frontend = self._frontend(typer, max_pending_per_tenant=1, max_pending_total=10)

        async def drive():
            async with frontend:
                first = asyncio.ensure_future(frontend.submit(_table("a"), customer_id="t1"))
                await asyncio.sleep(0.02)
                with pytest.raises(OverloadedError):
                    await frontend.submit(_table("b"), customer_id="t1")
                # Another tenant is not starved by t1's full queue.
                other = asyncio.ensure_future(frontend.submit(_table("c"), customer_id="t2"))
                await asyncio.gather(first, other)

        asyncio.run(drive())
        assert frontend.stats.shed_queue_full == 1
        assert frontend.stats.completed == 2

    def test_global_pending_bound_sheds(self):
        typer = _StubTyper(delay=0.15)
        frontend = self._frontend(typer, max_pending_total=1)

        async def drive():
            async with frontend:
                first = asyncio.ensure_future(frontend.submit(_table("a"), customer_id="t1"))
                await asyncio.sleep(0.02)
                with pytest.raises(OverloadedError) as excinfo:
                    await frontend.submit(_table("b"), customer_id="t2")
                await first
                return excinfo.value

        shed = asyncio.run(drive())
        assert shed.retry_after > 0.0
        assert frontend.stats.shed_queue_full == 1

    def test_pending_slots_are_released(self):
        typer = _StubTyper()
        frontend = self._frontend(typer, max_pending_per_tenant=1)

        async def drive():
            async with frontend:
                for index in range(5):
                    await frontend.submit(_table(f"t{index}"), customer_id="t1")

        asyncio.run(drive())
        assert frontend.stats.admitted == 5
        assert frontend.stats.shed_total == 0

    def test_draining_frontend_rejects(self):
        typer = _StubTyper()
        frontend = self._frontend(typer)

        async def drive():
            await frontend.start()
            await frontend.shutdown()
            with pytest.raises(ServingError):
                await frontend.submit(_table())

        asyncio.run(drive())
        assert frontend.stats.rejected_draining == 1

    def test_default_deadline_applies(self):
        typer = _StubTyper(delay=0.2)
        frontend = self._frontend(typer, default_deadline=0.05)

        async def drive():
            async with frontend:
                # An explicit per-request deadline overrides the default.
                blocker = asyncio.ensure_future(
                    frontend.submit(_table("blocker"), deadline=5.0)
                )
                await asyncio.sleep(0.02)
                with pytest.raises(DeadlineExceededError):
                    await frontend.submit(_table("doomed"))
                await blocker

        asyncio.run(drive())
        assert frontend.stats.timed_out == 1
        assert frontend.stats.completed == 1


# ------------------------------------------------------------------ frontend HTTP
async def _http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: dict | None = None,
    connection: tuple | None = None,
    close: bool = False,
):
    """Minimal HTTP/1.1 client; returns (status, headers, body_json, connection)."""
    if connection is None:
        connection = await asyncio.open_connection(host, port)
    reader, writer = connection
    body = json.dumps(payload).encode() if payload is not None else b""
    lines = [f"{method} {path} HTTP/1.1", f"Host: {host}", f"Content-Length: {len(body)}"]
    if close:
        lines.append("Connection: close")
    writer.write(("\r\n".join(lines) + "\r\n\r\n").encode() + body)
    await writer.drain()
    status_line = await reader.readline()
    status = int(status_line.split()[1])
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode().partition(":")
        headers[name.strip().lower()] = value.strip()
    content = await reader.readexactly(int(headers.get("content-length", "0")))
    return status, headers, json.loads(content) if content else None, connection


def _comparable(prediction_dict: dict) -> dict:
    """Everything except wall-clock timings (bit-exact float comparison)."""
    return {key: value for key, value in prediction_dict.items() if key != "step_seconds"}


class TestFrontendHttp:
    def test_annotate_round_trip_is_bit_identical(self, pretrained_typer, fig3_table):
        expected = json.loads(json.dumps(pretrained_typer.annotate(fig3_table).to_dict()))
        service = AnnotationService(pretrained_typer, max_batch_delay=0.0)
        frontend = AnnotationFrontend(service)

        async def drive():
            async with frontend:
                host, port = frontend.address
                status, _, body, connection = await _http_request(
                    host, port, "POST", "/annotate", {"table": fig3_table.to_dict()}
                )
                connection[1].close()
                return status, body

        status, body = asyncio.run(drive())
        assert status == 200
        assert _comparable(body) == _comparable(expected)
        assert frontend.stats.completed == 1

    def test_keep_alive_serves_sequential_requests(self, pretrained_typer, fig3_table):
        service = AnnotationService(pretrained_typer, max_batch_delay=0.0)
        frontend = AnnotationFrontend(service)

        async def drive():
            async with frontend:
                host, port = frontend.address
                payload = {"table": fig3_table.to_dict()}
                status1, _, body1, connection = await _http_request(
                    host, port, "POST", "/annotate", payload
                )
                status2, _, body2, connection = await _http_request(
                    host, port, "POST", "/annotate", payload, connection=connection
                )
                connection[1].close()
                return status1, status2, body1, body2

        status1, status2, body1, body2 = asyncio.run(drive())
        assert status1 == status2 == 200
        assert _comparable(body1) == _comparable(body2)
        assert frontend.stats.connections == 1

    def test_healthz_stats_and_errors(self, pretrained_typer):
        service = AnnotationService(pretrained_typer, max_batch_delay=0.0)
        frontend = AnnotationFrontend(service, FrontendConfig(tenant_rate=1000.0))

        async def drive():
            async with frontend:
                host, port = frontend.address
                health, _, health_body, c1 = await _http_request(host, port, "GET", "/healthz")
                c1[1].close()
                stats, _, stats_body, c2 = await _http_request(host, port, "GET", "/stats")
                c2[1].close()
                missing, _, _, c3 = await _http_request(host, port, "GET", "/nope")
                c3[1].close()
                wrong_method, _, _, c4 = await _http_request(host, port, "GET", "/annotate")
                c4[1].close()
                bad_json, _, _, c5 = await _http_request(
                    host, port, "POST", "/annotate", {"not_a_table": 1}
                )
                c5[1].close()
                bad_deadline, _, _, c6 = await _http_request(
                    host, port, "POST", "/annotate",
                    {"table": _table().to_dict(), "deadline_ms": -5},
                )
                c6[1].close()
                return health, health_body, stats, stats_body, missing, wrong_method, bad_json, bad_deadline

        health, health_body, stats, stats_body, missing, wrong_method, bad_json, bad_deadline = (
            asyncio.run(drive())
        )
        assert health == 200 and health_body == {"status": "ok", "accepting": True}
        assert stats == 200
        assert stats_body["frontend"]["admitted"] == 0
        service_stats = stats_body["service"]["stats"]
        for key in ("shed_total", "timed_out_total", "degraded_batches", "confidence_threshold"):
            assert key in service_stats
        assert missing == 404
        assert wrong_method == 405
        assert bad_json == 400
        assert bad_deadline == 400

    def test_shed_maps_to_429_with_retry_after(self, pretrained_typer):
        service = AnnotationService(pretrained_typer, max_batch_delay=0.0)
        frontend = AnnotationFrontend(
            service, FrontendConfig(tenant_rate=0.001, tenant_burst=1)
        )

        async def drive():
            async with frontend:
                host, port = frontend.address
                payload = {"table": _table().to_dict()}
                first, _, _, connection = await _http_request(
                    host, port, "POST", "/annotate", payload
                )
                second, headers, body, connection = await _http_request(
                    host, port, "POST", "/annotate", payload, connection=connection
                )
                connection[1].close()
                return first, second, headers, body

        first, second, headers, body = asyncio.run(drive())
        assert first == 200
        assert second == 429
        assert float(headers["retry-after"]) > 0.0
        assert body["error"] == "overloaded"
        assert body["retry_after_seconds"] > 0.0

    def test_deadline_maps_to_504(self):
        typer = _StubTyper(delay=0.2)
        service = AnnotationService(typer, max_batch_delay=0.0)
        frontend = AnnotationFrontend(service)

        async def drive():
            async with frontend:
                host, port = frontend.address
                blocker = asyncio.ensure_future(frontend.submit(_table("blocker")))
                await asyncio.sleep(0.02)
                status, _, body, connection = await _http_request(
                    host, port, "POST", "/annotate",
                    {"table": _table("doomed").to_dict(), "deadline_ms": 50},
                )
                connection[1].close()
                await blocker
                return status, body

        status, body = asyncio.run(drive())
        assert status == 504
        assert body["error"] == "deadline_exceeded"

    def test_sigterm_drains_within_deadline_without_leaks(self):
        typer = _StubTyper(delay=0.05)
        service = AnnotationService(typer, max_batch_delay=0.0)
        frontend = AnnotationFrontend(service, FrontendConfig(drain_timeout=2.0))

        async def drive():
            await frontend.start()
            frontend.install_signal_handlers()
            host, port = frontend.address
            status, _, _, connection = await _http_request(
                host, port, "POST", "/annotate", {"table": _table().to_dict()}
            )
            assert status == 200
            # The keep-alive connection is now idle; SIGTERM must still drain.
            os.kill(os.getpid(), signal.SIGTERM)
            await frontend.wait_drained(timeout=5.0)
            connection[1].close()
            # A new connection is refused: the listener is gone.
            with pytest.raises(OSError):
                await asyncio.open_connection(host, port)
            leaked = [
                task for task in asyncio.all_tasks()
                if task is not asyncio.current_task() and not task.done()
            ]
            return leaked

        leaked = asyncio.run(drive())
        assert leaked == []
        assert frontend.last_drain_seconds is not None
        assert frontend.last_drain_seconds <= 2.0
        assert not frontend.is_running
        assert not frontend.service.is_running

    def test_drain_with_inflight_requests_is_bounded(self):
        typer = _StubTyper(delay=0.5)
        service = AnnotationService(typer, max_batch_delay=0.0)
        frontend = AnnotationFrontend(service, FrontendConfig(drain_timeout=0.15))

        async def drive():
            await frontend.start()
            host, port = frontend.address

            async def client():
                try:
                    return await _http_request(
                        host, port, "POST", "/annotate", {"table": _table().to_dict()}
                    )
                except (ConnectionError, asyncio.IncompleteReadError, OSError):
                    return None

            request = asyncio.ensure_future(client())
            await asyncio.sleep(0.1)  # in flight on the executor
            started = time.monotonic()
            await frontend.shutdown()
            drain_seconds = time.monotonic() - started
            request.cancel()
            await asyncio.gather(request, return_exceptions=True)
            return drain_seconds

        drain_seconds = asyncio.run(drive())
        # Bounded by the 0.15 s drain budget, not the 0.5 s cascade.
        assert drain_seconds < 0.45
        assert frontend.last_drain_seconds <= 0.45

    def test_double_start_and_restart_rejected(self):
        typer = _StubTyper()
        service = AnnotationService(typer)
        frontend = AnnotationFrontend(service)

        async def drive():
            await frontend.start()
            with pytest.raises(ServingError):
                await frontend.start()
            await frontend.shutdown()
            with pytest.raises(ServingError):
                await frontend.start()

        asyncio.run(drive())

    def test_invalid_frontend_config(self):
        for kwargs in (
            {"tenant_rate": 0.0},
            {"tenant_burst": 0.0},
            {"max_pending_total": 0},
            {"default_deadline": 0.0},
            {"drain_timeout": -1.0},
        ):
            with pytest.raises(ConfigurationError):
                FrontendConfig(**kwargs).validate()
