"""PR 10 coverage: the worker pool, the typed spec layer, the unified stats.

The acceptance gates pinned here:

* **Spec round-trip** — ``str(ServingSpec.parse(s)) == s`` for every backend
  spec string documented in docs/SERVING.md (scraped from the doc, so the
  table and the parser cannot drift) plus the pool forms.
* **Warm-routing affinity** — ≥90% affinity hit rate on a repeat-heavy
  tenant mix (the deployment shape the paper's store amortization needs).
* **Parity** — pool predictions bit-identical to calling the typer
  directly, including across a worker death.
* **Supervision drill** — SIGKILL a worker mid-flight: the pool detects the
  death, restarts the slot, re-dispatches the in-flight requests, and no
  request is lost (faultnet-style fault injection, process edition).
* **Pre-warm** — a restarted pool loads worker LRUs from the shared
  segment directory before serving.
* **Stats vocabulary** — every ``summary()`` shares the
  :func:`repro.serving.stats.render_stats` sections, and every deprecated
  alias in :data:`DEPRECATED_KEYS` still equals its canonical path.
"""

from __future__ import annotations

import asyncio
import os
import re
import signal
from pathlib import Path

import pytest

from repro.core.errors import ConfigurationError, ServingError
from repro.serving import (
    AnnotationFrontend,
    AnnotationPool,
    AnnotationService,
    BackendSpec,
    FrontendSpec,
    PoolSpec,
    ServingSpec,
    StoreSpec,
    TransportSpec,
    resolve_backend,
    resolve_transport,
)
from repro.serving.pool import WarmthIndex
from repro.serving.profile_store import PersistentProfileStore
from repro.serving.stats import DEPRECATED_KEYS, render_stats, resolve_key

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Every spec form the serving layer has ever documented.  The scrape test
#: below proves docs/SERVING.md stays inside this grammar; this literal list
#: keeps the round-trip gate meaningful even if the doc's phrasing changes.
DOCUMENTED_SPECS = [
    "serial",
    "threaded",
    "threaded:4",
    "multiprocess",
    "multiprocess:8",
    "multiprocess:8+shm",
    "multiprocess+pickle",
    "multiprocess:8+tcp://worker-a:7071,worker-b:7071",
    "multiprocess:8+tcp",
    "pool:4",
    "pool:4@multiprocess:2+shm",
]

#: Canonical spec-string shapes as they appear in inline code spans in the
#: serving doc.  Matches full tokens only, so prose words that merely start
#: with a backend name ("serialization") never trip the gate.
_CANONICAL_SPEC = re.compile(
    r"^(?:pool:\d+(?:@\S+)?|(?:serial|threaded|multiprocess)(?:[:+]\S+)?)$"
)


def _comparable(predictions):
    """Everything except wall-clock timings (bit-exact float comparison)."""
    return [(p.table_name, p.step_trace, p.columns) for p in predictions]


@pytest.fixture()
def tables(eval_corpus):
    return [table.copy() for table in eval_corpus.tables[:6]]


# ------------------------------------------------------------ spec round-trip
class TestServingSpec:
    def test_round_trips_every_documented_spec_string(self):
        for spec_string in DOCUMENTED_SPECS:
            spec = ServingSpec.parse(spec_string)
            assert str(spec) == spec_string

    def test_round_trips_every_spec_string_in_the_serving_doc(self):
        """Scrape docs/SERVING.md so the doc and the parser cannot drift."""
        text = (REPO_ROOT / "docs" / "SERVING.md").read_text(encoding="utf-8")
        found = set()
        for match in re.finditer(r"`\"?([^`\s]+?)\"?`", text):
            candidate = match.group(1)
            if not _CANONICAL_SPEC.match(candidate):
                continue
            try:
                spec = ServingSpec.parse(candidate)
            except ConfigurationError:
                continue  # a grammar placeholder like `multiprocess:N`
            assert str(spec) == candidate, candidate
            found.add(candidate)
        # The scrape actually saw the documented tables, not an empty page.
        assert {"serial", "multiprocess:8+shm", "pool:4"} <= found

    def test_component_parsers(self):
        backend = BackendSpec.parse("multiprocess:4+tcp://h:7071")
        assert backend.workers == 4
        assert backend.transport == TransportSpec(name="tcp", peers=(("h", 7071),))
        assert str(backend) == "multiprocess:4+tcp://h:7071"
        assert str(PoolSpec.parse("pool:3")) == "pool:3"
        assert str(PoolSpec.parse("pool")) == "pool:2"  # default worker count
        assert StoreSpec.parse("memory:128").max_columns == 128
        store = StoreSpec.parse("disk:/var/lib/repro:64")
        assert store.directory == "/var/lib/repro" and store.max_columns == 64
        assert str(store) == "disk:/var/lib/repro:64"

    def test_invalid_specs_raise_configuration_error(self):
        for bad in ("", "warp", "serial+shm", "threaded:x", "pool:0", "pool:2@"):
            with pytest.raises(ConfigurationError):
                ServingSpec.parse(bad)
        with pytest.raises(ConfigurationError):
            StoreSpec.parse("tape:/dev/nst0")
        with pytest.raises(ConfigurationError):
            TransportSpec.parse("tcp://missing-port")

    def test_typed_specs_resolve_like_their_strings(self):
        assert ServingSpec.parse("threaded:2").resolve_backend().name == "threaded"
        assert resolve_backend(BackendSpec.parse("threaded:2")).name == "threaded"
        assert resolve_backend(ServingSpec.parse("serial")).name == "serial"
        assert resolve_transport(TransportSpec.parse("shm")).name == "shm"

    def test_frontend_spec_builds_a_validated_config(self):
        config = FrontendSpec(tenant_rate=None, default_deadline=None).to_config()
        assert config.tenant_rate is None
        with pytest.raises(ConfigurationError):
            FrontendSpec(tenant_burst=-1.0).to_config()

    def test_service_accepts_a_typed_backend_spec(self, pretrained_typer):
        service = AnnotationService(pretrained_typer, backend=BackendSpec.parse("serial"))
        assert service.summary()["backend"] == "serial"


# ------------------------------------------------------------------ the pool
class TestAnnotationPool:
    def test_parity_and_affinity_on_repeat_heavy_mix(self, pretrained_typer, tables):
        """Repeat tenants land warm ≥90% of the time, results bit-identical."""
        serial = _comparable([pretrained_typer.annotate(t) for t in tables])
        rounds = 12

        async def drive():
            async with AnnotationPool(pretrained_typer, 3) as pool:
                results = []
                for _ in range(rounds):
                    for table in tables:
                        results.append(await pool.annotate(table.copy()))
                return results, pool.stats

        results, stats = asyncio.run(drive())
        assert _comparable(results) == serial * rounds
        # First sight of each table is a miss; every repeat must stick.
        assert stats.affinity_hit_rate >= 0.9, stats.to_dict()
        assert stats.completed_total == len(tables) * rounds
        assert stats.errors_total == 0

    def test_routing_is_sticky_for_a_repeated_table(self, pretrained_typer, tables):
        async def drive():
            async with AnnotationPool(pretrained_typer, PoolSpec(workers=3)) as pool:
                await pool.annotate(tables[0].copy())
                first = {
                    slot: info["warm_prefixes"]
                    for slot, info in pool.summary()["pool"]["per_worker"].items()
                }
                for _ in range(4):
                    await pool.annotate(tables[0].copy())
                second = {
                    slot: info["warm_prefixes"]
                    for slot, info in pool.summary()["pool"]["per_worker"].items()
                }
                return first, second

        first, second = asyncio.run(drive())
        # All of the table's prefixes stay on the worker that first saw it.
        assert first == second

    def test_sigkill_worker_redispatches_in_flight_requests(self, pretrained_typer, tables):
        """The supervision drill: kill -9 a worker, lose zero requests."""
        serial = _comparable([pretrained_typer.annotate(t) for t in tables])

        async def drive():
            async with AnnotationPool(
                pretrained_typer, PoolSpec(workers=2, heartbeat_interval=0.05)
            ) as pool:
                futures = [
                    asyncio.ensure_future(pool.annotate(t.copy())) for t in tables
                ]
                await asyncio.sleep(0.01)  # requests are now dispatched
                victim = pool._workers[0]
                os.kill(victim.process.pid, signal.SIGKILL)
                results = await asyncio.gather(*futures)
                follow_up = await pool.annotate(tables[0].copy())
                return results, follow_up, pool.stats

        results, follow_up, stats = asyncio.run(drive())
        assert _comparable(results) == serial
        assert _comparable([follow_up]) == serial[:1]
        assert stats.worker_deaths >= 1
        assert stats.restarts >= 1
        assert stats.redispatches >= 1
        assert stats.errors_total == 0

    def test_workers_prewarm_from_shared_segments(self, pretrained_typer, tables, tmp_path):
        """A pool restarted over a warm directory serves from pre-warmed LRUs."""

        async def first_life():
            async with AnnotationPool(pretrained_typer, 2, directory=tmp_path) as pool:
                for table in tables:
                    await pool.annotate(table.copy())

        async def second_life():
            async with AnnotationPool(
                pretrained_typer,
                PoolSpec(workers=2, heartbeat_interval=0.05),
                directory=tmp_path,
            ) as pool:
                await asyncio.sleep(0.3)  # a heartbeat pong carries store stats
                return pool.summary()["pool"]["per_worker"]

        asyncio.run(first_life())
        assert any(tmp_path.glob("segment-*.seg")), "first life persisted nothing"
        per_worker = asyncio.run(second_life())
        prewarmed = [
            info["store"]["prewarmed_entries"]
            for info in per_worker.values()
            if info.get("store") is not None
        ]
        assert prewarmed and all(count > 0 for count in prewarmed), per_worker

    def test_round_robin_routing_is_blind(self, pretrained_typer, tables):
        async def drive():
            spec = PoolSpec(workers=2, routing="round-robin")
            async with AnnotationPool(pretrained_typer, spec) as pool:
                for _ in range(5):
                    await pool.annotate(tables[0].copy())
                return pool.stats

        stats = asyncio.run(drive())
        # Alternating slots: the repeats keep landing on the cold worker;
        # warm routing in the same scenario misses exactly once.
        assert stats.affinity_misses >= 2

    def test_spec_forms_and_rejections(self, pretrained_typer):
        pool = AnnotationPool(pretrained_typer, "pool:3")
        assert pool.pool_spec.workers == 3
        pool = AnnotationPool(pretrained_typer, ServingSpec.parse("pool:2@threaded:2"))
        assert str(pool.spec) == "pool:2@threaded:2"
        pool = AnnotationPool(pretrained_typer, PoolSpec(workers=1))
        assert pool.pool_spec.workers == 1
        with pytest.raises(ConfigurationError):
            AnnotationPool(pretrained_typer, "multiprocess:4")  # no pool section
        with pytest.raises(ConfigurationError):
            AnnotationPool(pretrained_typer, 0)
        with pytest.raises(ConfigurationError):
            AnnotationPool(pretrained_typer, 2, slo=object())

    def test_rejects_requests_before_start_and_after_shutdown(
        self, pretrained_typer, tables
    ):
        async def drive():
            pool = AnnotationPool(pretrained_typer, 2)
            with pytest.raises(ServingError):
                await pool.annotate(tables[0])
            await pool.start()
            try:
                await pool.annotate(tables[0].copy())
            finally:
                await pool.shutdown()
            with pytest.raises(ServingError):
                await pool.annotate(tables[0])
            return pool.stats

        stats = asyncio.run(drive())
        assert stats.rejected_total == 2
        assert stats.completed_total == 1


# ------------------------------------------------------------- frontend mode
class TestFrontendPoolMode:
    def test_frontend_drives_a_pool(self, pretrained_typer, tables):
        serial = _comparable([pretrained_typer.annotate(tables[0])])

        async def drive():
            pool = AnnotationPool(pretrained_typer, 2)
            frontend = AnnotationFrontend(
                pool=pool, config=FrontendSpec(tenant_rate=None, default_deadline=None)
            )
            async with frontend:
                prediction = await frontend.submit(tables[0].copy())
                report = frontend.summary()
            return prediction, report

        prediction, report = asyncio.run(drive())
        assert _comparable([prediction]) == serial
        assert report["frontend"]["admitted"] == 1
        assert report["pool"]["completed_total"] == 1
        assert report["service"]["pool"] is report["pool"]

    def test_frontend_requires_exactly_one_of_service_or_pool(self, pretrained_typer):
        with pytest.raises(ConfigurationError):
            AnnotationFrontend()
        service = AnnotationService(pretrained_typer)
        pool = AnnotationPool(pretrained_typer, 2)
        with pytest.raises(ConfigurationError):
            AnnotationFrontend(service=service, pool=pool)


# ------------------------------------------------------------ stats contract
class TestUnifiedStats:
    def test_summaries_share_the_render_stats_sections(self, pretrained_typer, tables):
        async def drive():
            service = AnnotationService(pretrained_typer)
            async with service:
                await service.annotate(tables[0].copy())
            return service.summary()

        report = asyncio.run(drive())
        typer_report = pretrained_typer.summary()
        assert report["stats"] is report["service"]
        assert "columnar_kernels" in report
        assert "columnar_kernels" in typer_report
        assert "timings" in typer_report

    def test_deprecated_aliases_equal_their_canonical_paths(
        self, pretrained_typer, tables, tmp_path
    ):
        async def drive():
            service = AnnotationService(pretrained_typer)
            async with service:
                for table in tables:
                    await service.annotate(table.copy())
            return service.summary()

        store = PersistentProfileStore(tmp_path, flush_interval=0)
        try:
            with store.activated():
                report = asyncio.run(drive())
        finally:
            store.close()
        assert "profile_store" in report
        for alias, canonical in DEPRECATED_KEYS.items():
            if alias.startswith("summary."):
                continue  # section renames, not value aliases
            target = resolve_key(report, canonical)
            if target is None:  # section absent in this run (e.g. no transport)
                continue
            assert resolve_key(report, alias) == target, (alias, canonical)

    def test_render_stats_composes_caller_sections(self, pretrained_typer):
        report = render_stats(typer=pretrained_typer)
        assert "columnar_kernels" in report and "timings" in report
        assert "service" not in report and "pool" not in report


# ------------------------------------------------------------- warmth index
class TestWarmthIndex:
    def test_dispatch_overlay_feeds_routing(self, tmp_path):
        index = WarmthIndex(tmp_path, prefix_len=4)
        index.note_dispatch(1, ("abcd", "ef01"))
        assert index.warmth(("abcd",)) == {1: 1}
        assert index.warmth(("abcd", "ef01", "9999")) == {1: 2}
        assert index.per_worker_counts() == {1: 2}
        assert index.warm_prefixes == 2

    def test_tail_attributes_registered_journals_only(self, tmp_path):
        store = PersistentProfileStore(tmp_path, flush_interval=0)
        try:
            key = "ab" * 16
            with store.activated():
                store.namespace(key)["profile"] = {"n": 1}
                store.flush()
            unregistered = WarmthIndex(tmp_path, prefix_len=8)
            unregistered.tail()
            assert unregistered.warmth((key[:8],)) == {}  # pid not registered
            registered = WarmthIndex(tmp_path, prefix_len=8)
            registered.register_pid(os.getpid(), 0)
            registered.tail()
            assert registered.warmth((key[:8],)) == {0: 1}
        finally:
            store.close()
