"""Multi-node block transport: framing, specs, parity, and the fault matrix.

Contracts pinned here:

* **framing** — every malformed frame (bad magic, unknown type, oversize,
  torn, corrupt payload) is rejected as :class:`FrameError`, never decoded;
* **parity** — remote annotation over loopback TCP is bit-identical to the
  local path, and *stays* bit-identical under every injected fault (torn
  frames, corrupt bytes, dead peers, slow peers): network failures degrade
  to running the shard locally, counted with a reason, never to a changed
  or missing prediction;
* **lifecycle** — a killed or wedged peer never leaks a ``/dev/shm``
  segment or a socket, and never wedges the dispatcher (the next clean run
  succeeds on the same transport).

The faults come from :mod:`faultnet`'s frame-aware proxy, so the same
machinery is reusable by the E16 chaos benchmark leg.
"""

from __future__ import annotations

import os
import socket
import time

import pytest

from datagen import mixed_table, random_corpus
from faultnet import C2S, S2C, FaultProxy, Rule
from repro.core.errors import ConfigurationError, ServingError
from repro.core.prediction import ColumnPrediction, TablePrediction, TypeScore
from repro.core.table import Table
from repro.serving import MultiprocessBackend, resolve_backend, resolve_transport
from repro.serving.net import (
    FRAME_HEADER,
    FRAME_MAGIC,
    MSG_RESULT,
    MSG_SHARD,
    BlockWorkerServer,
    FrameError,
    NetConfig,
    NetTimeoutError,
    NetTransport,
    PeerUnavailableError,
    read_frame,
    write_frame,
)
from repro.serving.transport import (
    RESULT_SEGMENT_PREFIX,
    SHARD_SEGMENT_PREFIX,
    reset_transport_stats,
    transport_stats,
)

SHM_DIR = "/dev/shm"


def _our_segments() -> list[str]:
    if not os.path.isdir(SHM_DIR):  # pragma: no cover - non-Linux fallback
        return []
    return sorted(
        name
        for name in os.listdir(SHM_DIR)
        if name.startswith((SHARD_SEGMENT_PREFIX, RESULT_SEGMENT_PREFIX))
    )


@pytest.fixture(autouse=True)
def _no_segment_leaks():
    """The net transport must never materialize a /dev/shm segment."""
    before = _our_segments()
    yield
    assert _our_segments() == before, "net transport leaked shared-memory segments"


#: Fast-failure knobs so fault tests run in milliseconds, not deadlines.
FAST = dict(connect_timeout=0.5, io_timeout=1.0, connect_retries=1, backoff_base=0.01)


def predict_tables(tables):
    """Deterministic module-level shard fn (fork- and pickle-shippable)."""
    return [
        TablePrediction(
            table_name=table.name,
            columns=[
                ColumnPrediction(
                    column_index=index,
                    column_name=column.name,
                    scores=[TypeScore(0.5, "city")],
                    source_step="header_matching",
                )
                for index, column in enumerate(table.columns)
            ],
            step_trace={"header_matching": len(table.columns)},
        )
        for table in tables
    ]


def summarize_tables(tables):
    """A shard fn whose results the prediction codec cannot encode."""
    return [(table.name, len(table.columns)) for table in tables]


def failing_fn(tables):
    raise ValueError(f"boom on {tables[0].name}")


def _tables(n: int = 2) -> list[Table]:
    return [mixed_table() for _ in range(n)]


@pytest.fixture()
def server():
    with BlockWorkerServer(predict_tables, config=NetConfig(**FAST)) as srv:
        yield srv
        assert srv.wait_idle(), "server still had open connections"


def _transport(*specs, **config) -> NetTransport:
    peers = []
    for spec in specs:
        host, _, port = spec.removeprefix("tcp://").rpartition(":")
        peers.append((host, int(port)))
    return NetTransport(peers, NetConfig(**{**FAST, **config}))


def _roundtrip(transport: NetTransport, fn=predict_tables, tables=None):
    """encode → run_in_worker → decode → release, returning the results."""
    payload = transport.encode_shard(tables if tables is not None else _tables())
    try:
        return transport.decode_results(transport.run_in_worker(fn, payload))
    finally:
        transport.release(payload)


# -------------------------------------------------------------------- config
class TestNetConfig:
    def test_rejects_nonpositive_timeouts(self):
        with pytest.raises(ConfigurationError):
            NetConfig(io_timeout=0)
        with pytest.raises(ConfigurationError):
            NetConfig(connect_timeout=-1)

    def test_rejects_bad_backoff_and_retries(self):
        with pytest.raises(ConfigurationError):
            NetConfig(connect_retries=-1)
        with pytest.raises(ConfigurationError):
            NetConfig(backoff_base=0.5, backoff_max=0.1)

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_NET_IO_TIMEOUT", "3.5")
        monkeypatch.setenv("REPRO_NET_CONNECT_RETRIES", "7")
        config = NetConfig.from_env()
        assert config.io_timeout == 3.5
        assert config.connect_retries == 7
        assert config.connect_timeout == NetConfig().connect_timeout

    def test_bad_env_value_is_a_config_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_NET_IO_TIMEOUT", "fast")
        with pytest.raises(ConfigurationError):
            NetConfig.from_env()


# ------------------------------------------------------------------- framing
class TestFraming:
    def _pair(self):
        left, right = socket.socketpair()
        left.settimeout(2)
        right.settimeout(2)
        return left, right

    def test_roundtrip(self):
        left, right = self._pair()
        try:
            sent = write_frame(left, MSG_SHARD, b"payload")
            msg_type, payload, nbytes = read_frame(right, 1 << 20)
            assert (msg_type, payload) == (MSG_SHARD, b"payload")
            assert sent == nbytes == FRAME_HEADER.size + len(b"payload")
        finally:
            left.close()
            right.close()

    def test_empty_payload_roundtrips(self):
        left, right = self._pair()
        try:
            write_frame(left, MSG_RESULT, b"")
            assert read_frame(right, 1 << 20)[:2] == (MSG_RESULT, b"")
        finally:
            left.close()
            right.close()

    def test_bad_magic_rejected(self):
        left, right = self._pair()
        try:
            left.sendall(FRAME_HEADER.pack(b"NOPE", MSG_SHARD, 0, 0))
            with pytest.raises(FrameError, match="magic"):
                read_frame(right, 1 << 20)
        finally:
            left.close()
            right.close()

    def test_unknown_message_type_rejected(self):
        left, right = self._pair()
        try:
            left.sendall(FRAME_HEADER.pack(FRAME_MAGIC, 42, 0, 0))
            with pytest.raises(FrameError, match="message type"):
                read_frame(right, 1 << 20)
        finally:
            left.close()
            right.close()

    def test_oversized_frame_rejected_before_reading_payload(self):
        left, right = self._pair()
        try:
            left.sendall(FRAME_HEADER.pack(FRAME_MAGIC, MSG_SHARD, 1 << 30, 0))
            with pytest.raises(FrameError, match="max_message_bytes"):
                read_frame(right, 1 << 20)
        finally:
            left.close()
            right.close()

    def test_crc_mismatch_rejected(self):
        left, right = self._pair()
        try:
            write_frame(left, MSG_SHARD, b"payload")
            raw = right.recv(FRAME_HEADER.size + 7, socket.MSG_WAITALL)
            mutated = bytearray(raw)
            mutated[-1] ^= 0xFF
            left2, right2 = self._pair()
            try:
                left2.sendall(mutated)
                with pytest.raises(FrameError, match="crc"):
                    read_frame(right2, 1 << 20)
            finally:
                left2.close()
                right2.close()
        finally:
            left.close()
            right.close()

    def test_torn_frame_rejected(self):
        left, right = self._pair()
        try:
            left.sendall(FRAME_HEADER.pack(FRAME_MAGIC, MSG_SHARD, 100, 0))
            left.sendall(b"only-ten-b")
            left.close()
            with pytest.raises(FrameError, match="mid-frame"):
                read_frame(right, 1 << 20)
        finally:
            right.close()

    def test_clean_eof_returns_none_when_allowed(self):
        left, right = self._pair()
        left.close()
        try:
            assert read_frame(right, 1 << 20, eof_ok=True) is None
            with pytest.raises(FrameError):
                read_frame(right, 1 << 20)
        finally:
            right.close()

    def test_read_deadline_fires(self):
        left, right = self._pair()
        right.settimeout(0.05)
        try:
            with pytest.raises(NetTimeoutError):
                read_frame(right, 1 << 20)
        finally:
            left.close()
            right.close()


# --------------------------------------------------------------------- specs
class TestSpecs:
    def test_explicit_spec_parses_multiple_peers(self):
        transport = NetTransport.from_spec("tcp://127.0.0.1:9001,127.0.0.2:9002")
        assert transport.peers == [("127.0.0.1", 9001), ("127.0.0.2", 9002)]
        assert transport.name == "tcp"

    def test_env_peers(self, monkeypatch):
        monkeypatch.setenv("REPRO_NET_PEERS", "127.0.0.1:9001")
        assert NetTransport.from_spec("tcp").peers == [("127.0.0.1", 9001)]

    def test_missing_env_peers_is_a_config_error(self, monkeypatch):
        monkeypatch.delenv("REPRO_NET_PEERS", raising=False)
        with pytest.raises(ConfigurationError, match="REPRO_NET_PEERS"):
            NetTransport.from_spec("tcp")

    @pytest.mark.parametrize("spec", ["tcp://", "tcp://nohost", "tcp://h:not-a-port"])
    def test_malformed_peer_specs_rejected(self, spec):
        with pytest.raises(ConfigurationError):
            NetTransport.from_spec(spec)

    def test_resolve_transport_understands_tcp_specs(self):
        transport = resolve_transport("tcp://127.0.0.1:9001")
        assert isinstance(transport, NetTransport)

    def test_resolve_backend_understands_tcp_suffix(self):
        backend = resolve_backend("multiprocess:2+tcp://127.0.0.1:9001")
        assert isinstance(backend, MultiprocessBackend)
        assert isinstance(backend.transport, NetTransport)
        assert backend.transport.peers == [("127.0.0.1", 9001)]


# ------------------------------------------------------------------ encoding
class TestEncodeShard:
    def test_tables_ride_the_wire_payload(self, server):
        transport = _transport(server.spec)
        payload = transport.encode_shard(_tables())
        assert payload[0] == "net"
        assert isinstance(payload[2], bytes)
        assert payload[3] == server.address
        transport.release(payload)

    def test_non_table_shards_fall_back_to_pickle(self):
        transport = _transport("tcp://127.0.0.1:9001")
        payload = transport.encode_shard(["not-a-table"])
        assert payload[0] == "pickle"
        assert transport.stats.pickle_fallbacks == 1
        assert "not tables" in transport.stats.last_fallback_reason

    def test_unsupported_cells_fall_back_to_pickle(self):
        transport = _transport("tcp://127.0.0.1:9001")
        table = Table.from_columns_dict({"c": [object()]}, name="t")
        payload = transport.encode_shard([table])
        assert payload[0] == "pickle"
        assert transport.stats.pickle_fallbacks == 1

    def test_oversized_shards_fall_back_to_pickle(self):
        transport = _transport("tcp://127.0.0.1:9001", max_message_bytes=64)
        payload = transport.encode_shard(_tables(1))
        assert payload[0] == "pickle"
        assert "max_message_bytes" in transport.stats.last_fallback_reason

    def test_peers_assigned_round_robin(self):
        transport = _transport("tcp://127.0.0.1:9001", "tcp://127.0.0.1:9002")
        picked = [transport.encode_shard(_tables(1))[3] for _ in range(4)]
        assert picked == [("127.0.0.1", 9001), ("127.0.0.1", 9002)] * 2


# ------------------------------------------------------------------ loopback
class TestLoopback:
    def test_remote_results_match_local(self, server):
        transport = _transport(server.spec)
        results = _roundtrip(transport)
        assert results == predict_tables(_tables())
        assert transport.stats.remote_shards == 1
        assert transport.stats.local_fallbacks == 0
        assert transport.stats.net_bytes_out > 0
        assert transport.stats.net_bytes_in > 0
        assert server.stats["shards_served"] == 1

    def test_unsupported_results_come_back_pickled(self):
        with BlockWorkerServer(summarize_tables, config=NetConfig(**FAST)) as srv:
            transport = _transport(srv.spec)
            results = _roundtrip(transport, fn=summarize_tables)
            assert results == summarize_tables(_tables())
            assert transport.stats.remote_shards == 1
            assert transport.stats.result_pickle_fallbacks == 1
            assert srv.wait_idle()

    def test_remote_shard_error_reruns_locally_and_propagates(self):
        with BlockWorkerServer(failing_fn, config=NetConfig(**FAST)) as srv:
            transport = _transport(srv.spec)
            payload = transport.encode_shard(_tables())
            with pytest.raises(ValueError, match="boom"):
                transport.run_in_worker(failing_fn, payload)
            transport.release(payload)
            assert srv.stats["fn_errors"] == 1
            assert srv.wait_idle()

    def test_flaky_remote_error_recovers_via_local_rerun(self):
        # The server's fn fails once (environmental flake), then works: the
        # first shard comes back via the local rerun, the second remotely,
        # and the server survives its own error.
        calls = {"n": 0}

        def flaky(tables):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient")
            return predict_tables(tables)

        with BlockWorkerServer(flaky, config=NetConfig(**FAST)) as srv:
            transport = _transport(srv.spec)
            assert _roundtrip(transport, fn=flaky) == predict_tables(_tables())
            assert transport.stats.local_fallbacks == 1
            assert "remote shard error" in transport.stats.last_fallback_reason
            assert _roundtrip(transport, fn=flaky) == predict_tables(_tables())
            assert transport.stats.remote_shards == 1
            assert srv.stats["fn_errors"] == 1
            assert srv.stats["shards_served"] == 1

    def test_pickle_fallback_shards_never_touch_the_wire(self, server):
        transport = _transport(server.spec)
        results = _roundtrip(
            transport,
            fn=lambda items: [item.upper() for item in items],
            tables=["not-a-table", "also-not"],
        )
        assert results == ["NOT-A-TABLE", "ALSO-NOT"]
        assert transport.stats.net_bytes_out == 0
        assert server.stats["connections"] == 0

    def test_two_servers_share_the_load(self):
        with BlockWorkerServer(predict_tables, config=NetConfig(**FAST)) as one:
            with BlockWorkerServer(predict_tables, config=NetConfig(**FAST)) as two:
                transport = _transport(one.spec, two.spec)
                for _ in range(2):
                    assert _roundtrip(transport) == predict_tables(_tables())
                assert one.stats["shards_served"] == 1
                assert two.stats["shards_served"] == 1
                assert one.wait_idle() and two.wait_idle()


# ----------------------------------------------------------------- fallbacks
class TestFallbacks:
    def test_unreachable_peer_runs_locally_with_reconnects_counted(self):
        transport = _transport("tcp://127.0.0.1:1")
        results = _roundtrip(transport)
        assert results == predict_tables(_tables())
        assert transport.stats.local_fallbacks == 1
        assert transport.stats.remote_shards == 0
        assert transport.stats.reconnects == FAST["connect_retries"]
        assert "PeerUnavailableError" in transport.stats.last_fallback_reason

    def test_connect_deadline_bounds_a_black_hole_peer(self):
        # A listener that never accepts: the backlog fills after one
        # connection, making connect_timeout the binding bound.
        sink = socket.socket()
        sink.bind(("127.0.0.1", 0))
        sink.listen(0)
        try:
            spec = f"tcp://127.0.0.1:{sink.getsockname()[1]}"
            transport = _transport(spec, connect_timeout=0.2, io_timeout=0.2, connect_retries=0)
            results = _roundtrip(transport)
            assert results == predict_tables(_tables())
            assert transport.stats.local_fallbacks == 1
        finally:
            sink.close()

    def test_fallback_reason_reaches_global_stats(self):
        transport = _transport("tcp://127.0.0.1:1")
        _roundtrip(transport)
        bucket = transport_stats()["tcp"]
        assert bucket["local_fallbacks"] >= 1
        assert "PeerUnavailableError" in bucket["last_fallback_reason"]


# --------------------------------------------------------------- fault matrix
class TestChaos:
    def _proxied_transport(self, server, rules=(), kill_after_frames=None, **config):
        proxy = FaultProxy(server.address, rules=rules, kill_after_frames=kill_after_frames)
        proxy.start()
        return proxy, _transport(proxy.spec, **config)

    def test_corrupt_shard_payload_is_rejected_and_runs_locally(self, server):
        proxy, transport = self._proxied_transport(
            server, rules=[Rule(C2S, 0, "corrupt", corrupt_offset=FRAME_HEADER.size + 3)]
        )
        with proxy:
            results = _roundtrip(transport)
            assert results == predict_tables(_tables())
            assert transport.stats.local_fallbacks == 1
            assert proxy.faults == [(C2S, 0, "corrupt")]
            assert server.stats["frame_errors"] == 1
            assert server.stats["shards_served"] == 0

    def test_corrupt_header_magic_is_rejected(self, server):
        proxy, transport = self._proxied_transport(
            server, rules=[Rule(C2S, 0, "corrupt", corrupt_offset=0)]
        )
        with proxy:
            assert _roundtrip(transport) == predict_tables(_tables())
            assert transport.stats.local_fallbacks == 1
            assert server.stats["shards_served"] == 0

    def test_corrupt_result_payload_is_rejected_client_side(self, server):
        proxy, transport = self._proxied_transport(
            server, rules=[Rule(S2C, 0, "corrupt", corrupt_offset=FRAME_HEADER.size + 1)]
        )
        with proxy:
            assert _roundtrip(transport) == predict_tables(_tables())
            assert transport.stats.local_fallbacks == 1
            assert "FrameError" in transport.stats.last_fallback_reason
            # The server did serve the shard; the wire lost the result.
            assert server.stats["shards_served"] == 1

    def test_torn_result_frame_runs_locally(self, server):
        proxy, transport = self._proxied_transport(
            server, rules=[Rule(S2C, 0, "truncate", keep_bytes=FRAME_HEADER.size + 5)]
        )
        with proxy:
            assert _roundtrip(transport) == predict_tables(_tables())
            assert transport.stats.local_fallbacks == 1
            assert proxy.faults == [(S2C, 0, "truncate")]

    def test_dropped_shard_frame_hits_the_read_deadline(self, server):
        proxy, transport = self._proxied_transport(
            server, rules=[Rule(C2S, 0, "drop")], io_timeout=0.3
        )
        with proxy:
            assert _roundtrip(transport) == predict_tables(_tables())
            assert transport.stats.local_fallbacks == 1
            assert "NetTimeoutError" in transport.stats.last_fallback_reason

    def test_slow_result_hits_the_read_deadline(self, server):
        proxy, transport = self._proxied_transport(
            server, rules=[Rule(S2C, 0, "delay", delay_seconds=1.0)], io_timeout=0.2
        )
        with proxy:
            assert _roundtrip(transport) == predict_tables(_tables())
            assert transport.stats.local_fallbacks == 1
            assert "NetTimeoutError" in transport.stats.last_fallback_reason

    def test_peer_killed_mid_shard_runs_locally(self, server):
        proxy, transport = self._proxied_transport(server, rules=[Rule(C2S, 0, "kill")])
        with proxy:
            assert _roundtrip(transport) == predict_tables(_tables())
            assert transport.stats.local_fallbacks == 1

    def test_kill_after_frames_counts_frames_across_directions(self, server):
        # Forward the first full exchange (2 frames), kill during the second.
        proxy, transport = self._proxied_transport(server, kill_after_frames=2)
        with proxy:
            assert _roundtrip(transport) == predict_tables(_tables())
            assert transport.stats.remote_shards == 1
            assert _roundtrip(transport) == predict_tables(_tables())
            assert transport.stats.local_fallbacks == 1
            assert proxy.stats["kills"] >= 1

    def test_chaos_never_breaks_parity_or_wedges_the_dispatcher(self, server):
        rules = [
            Rule(C2S, 0, "corrupt", corrupt_offset=FRAME_HEADER.size + 2, conn_index=0),
            Rule(S2C, 0, "truncate", keep_bytes=3, conn_index=1),
            Rule(C2S, 0, "kill", conn_index=2),
        ]
        proxy, transport = self._proxied_transport(server, rules=rules)
        with proxy:
            corpus = random_corpus(4321, 6)
            for start in range(0, 6, 2):
                shard = [t.copy() for t in corpus[start : start + 2]]
                assert _roundtrip(transport, tables=shard) == predict_tables(shard)
            assert transport.stats.local_fallbacks == 3
            # The dispatcher is not wedged: a clean exchange still succeeds.
            assert _roundtrip(transport) == predict_tables(_tables())
            assert transport.stats.remote_shards >= 1


# ------------------------------------------------------------------ lifecycle
class TestServerLifecycle:
    def test_address_requires_start(self):
        server = BlockWorkerServer(predict_tables)
        with pytest.raises(ServingError, match="not started"):
            server.address  # noqa: B018 - the property raises

    def test_stop_unblocks_an_idle_connection(self):
        # Default config: io_timeout is 30s, so only stop() can unblock the
        # reader thread within the test's lifetime.
        server = BlockWorkerServer(predict_tables).start()
        client = socket.create_connection(server.address, timeout=2)
        try:
            deadline = time.monotonic() + 2
            while server.open_connections() == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert server.open_connections() == 1
        finally:
            server.stop()  # must not hang on the blocked reader thread
            client.close()
        assert server.open_connections() == 0

    def test_start_and_stop_are_idempotent(self):
        server = BlockWorkerServer(predict_tables)
        server.start()
        server.start()
        server.stop()
        server.stop()

    def test_garbage_connection_does_not_kill_the_server(self, server):
        with socket.create_connection(server.address, timeout=2) as client:
            client.sendall(b"GET / HTTP/1.0\r\n\r\n")
            try:
                data = client.recv(1024)
            except ConnectionError:
                data = b""  # closed with unread bytes pending → RST
            assert data == b""  # connection dropped, never a reply
        transport = _transport(server.spec)
        assert _roundtrip(transport) == predict_tables(_tables())


# ---------------------------------------------------------------- integration
class TestCorpusIntegration:
    def test_annotate_corpus_over_loopback_tcp_matches_serial(
        self, pretrained_typer, eval_corpus
    ):
        typer = pretrained_typer

        def comparable(predictions):
            return [(p.table_name, p.step_trace, p.columns) for p in predictions]

        serial = typer.annotate_corpus([t.copy() for t in eval_corpus], backend="serial")
        reset_transport_stats()
        with BlockWorkerServer.for_typer(typer) as srv:
            spec = f"multiprocess:2+{srv.spec}"
            remote = typer.annotate_corpus([t.copy() for t in eval_corpus], backend=spec)
            assert comparable(remote) == comparable(serial)
            assert srv.stats["shards_served"] >= 2
            assert srv.wait_idle()
        summary = typer.summary()["shard_transport"]["tcp"]
        assert summary["remote_shards"] >= 2
        assert summary["local_fallbacks"] == 0

    def test_annotate_corpus_with_dead_peer_falls_back_per_shard(
        self, pretrained_typer, eval_corpus
    ):
        typer = pretrained_typer

        def comparable(predictions):
            return [(p.table_name, p.step_trace, p.columns) for p in predictions]

        serial = typer.annotate_corpus([t.copy() for t in eval_corpus], backend="serial")
        with BlockWorkerServer.for_typer(typer) as srv:
            # One live peer, one black hole: round-robin sends every other
            # shard into the wall, and every one of them must still come back
            # bit-identical via the local fallback.
            transport = NetTransport(
                [srv.address, ("127.0.0.1", 1)],
                NetConfig(**FAST),
            )
            backend = MultiprocessBackend(max_workers=2, transport=transport)
            remote = typer.annotate_corpus([t.copy() for t in eval_corpus], backend=backend)
            assert comparable(remote) == comparable(serial)
            assert transport.stats.local_fallbacks >= 1
            assert srv.wait_idle()
