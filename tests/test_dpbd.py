"""Unit tests for the DPBD subsystem (feedback, LF inference, label models,
weak-label generation, and the session loop)."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError, FeedbackError
from repro.core.table import Column, Table
from repro.corpus import GitTablesConfig, GitTablesGenerator
from repro.dpbd import (
    AgreementWeightedLabelModel,
    ColumnRelabel,
    DPBDSession,
    ExplicitApproval,
    FeedbackLog,
    ImplicitApproval,
    MajorityVoteLabelModel,
    WeakLabelingConfig,
    generate_weak_labels,
    infer_labeling_functions,
)
from repro.dpbd.lf_inference import LFInferenceConfig
from repro.lookup.labeling_functions import (
    CoOccurrenceLF,
    HeaderMatchLF,
    MeanRangeLF,
    ValueRangeLF,
    ValueSetLF,
)


@pytest.fixture(scope="module")
def source_corpus():
    return GitTablesGenerator(GitTablesConfig(num_tables=40, seed=2)).generate_corpus()


class TestFeedbackEvents:
    def test_relabel_exposes_column(self, fig3_table):
        event = ColumnRelabel(fig3_table, "Income", "salary", previous_type="revenue")
        assert event.column.name == "Income"
        assert event.kind == "relabel"

    def test_relabel_requires_existing_column(self, fig3_table):
        with pytest.raises(FeedbackError):
            ColumnRelabel(fig3_table, "DoesNotExist", "salary")

    def test_relabel_requires_type(self, fig3_table):
        with pytest.raises(FeedbackError):
            ColumnRelabel(fig3_table, "Income", "")

    def test_approvals(self, fig3_table):
        explicit = ExplicitApproval(fig3_table, "Name", "name")
        implicit = ImplicitApproval(fig3_table, "Cities", "city")
        assert explicit.kind == "approval"
        assert implicit.kind == "implicit_approval"
        with pytest.raises(FeedbackError):
            ImplicitApproval(fig3_table, "Missing", "city")

    def test_event_ids_increase(self, fig3_table):
        first = ColumnRelabel(fig3_table, "Income", "salary")
        second = ColumnRelabel(fig3_table, "Income", "salary")
        assert second.event_id > first.event_id

    def test_feedback_log(self, fig3_table):
        log = FeedbackLog()
        log.record(ColumnRelabel(fig3_table, "Income", "salary"))
        log.record(ImplicitApproval(fig3_table, "Name", "name"))
        log.record(ExplicitApproval(fig3_table, "Cities", "city"))
        assert len(log) == 3
        assert len(log.relabels()) == 1
        assert len(log.approvals()) == 2
        assert len(log.events_for_type("salary")) == 1
        assert log.summary() == {"relabel": 1, "implicit_approval": 1, "approval": 1}


class TestLFInference:
    def test_numeric_column_produces_fig3_lf_kinds(self, fig3_table):
        functions = infer_labeling_functions(
            fig3_table["Income"], "salary", table=fig3_table, neighbor_types=["name", "company", "city"]
        )
        kinds = {type(function) for function in functions}
        assert ValueRangeLF in kinds      # LF1
        assert MeanRangeLF in kinds       # LF2
        assert CoOccurrenceLF in kinds    # LF3
        assert HeaderMatchLF in kinds     # LF4
        assert all(function.target_type == "salary" for function in functions)
        assert all(function.source == "local" for function in functions)

    def test_neighbor_types_fall_back_to_table_annotations(self, fig3_table):
        functions = infer_labeling_functions(fig3_table["Income"], "salary", table=fig3_table)
        assert any(isinstance(function, CoOccurrenceLF) for function in functions)

    def test_categorical_column_produces_value_set(self):
        table = Table.from_columns_dict({"status": ["Active", "Inactive"] * 10})
        functions = infer_labeling_functions(table["status"], "status", table=table)
        assert any(isinstance(function, ValueSetLF) for function in functions)

    def test_header_rule_can_be_disabled(self, fig3_table):
        config = LFInferenceConfig(include_header_rule=False)
        functions = infer_labeling_functions(fig3_table["Income"], "salary", config=config)
        assert not any(isinstance(function, HeaderMatchLF) for function in functions)

    def test_inferred_range_covers_demonstration(self, fig3_table):
        functions = infer_labeling_functions(fig3_table["Income"], "salary")
        range_lf = next(f for f in functions if isinstance(f, ValueRangeLF))
        assert range_lf.apply(fig3_table["Income"]) == 1.0


class TestLabelModels:
    def _functions(self):
        return [
            HeaderMatchLF("salary", ["income"]),
            ValueRangeLF("salary", 40_000, 80_000),
            HeaderMatchLF("city", ["town", "city"]),
        ]

    def test_majority_vote_abstention_semantics(self):
        model = MajorityVoteLabelModel()
        column = Column("income", ["50000", "60000"])
        distribution = model.label_column(self._functions(), column)
        # Both salary LFs fire at 1.0; the city LF abstains entirely.
        assert distribution["salary"] == pytest.approx(1.0)
        assert "city" not in distribution

    def test_majority_vote_empty_functions(self):
        assert MajorityVoteLabelModel().label_column([], Column("x", ["1"])) == {}

    def test_agreement_weighted_reliabilities(self):
        model = AgreementWeightedLabelModel()
        columns = [
            (Column("income", ["50000", "60000"]), None),
            (Column("salary", ["55000", "65000"]), None),
            (Column("price", ["3", "4"]), None),
        ]
        functions = [
            ValueRangeLF("salary", 40_000, 80_000, name="range"),
            MeanRangeLF("salary", 45_000, 70_000, name="mean"),
            HeaderMatchLF("salary", ["completely_unrelated_header"], name="lonely"),
        ]
        distributions = model.label_distributions(functions, columns)
        assert len(distributions) == 3
        assert set(model.last_reliabilities) == {"range", "mean", "lonely"}
        assert all(0.0 <= r <= 1.0 for r in model.last_reliabilities.values())

    def test_agreement_invalid_config(self):
        with pytest.raises(ConfigurationError):
            AgreementWeightedLabelModel(smoothing=2.0)
        with pytest.raises(ConfigurationError):
            AgreementWeightedLabelModel(iterations=0)


class TestWeakLabelGeneration:
    def test_salary_feedback_mines_salary_columns(self, fig3_table, source_corpus):
        functions = infer_labeling_functions(
            fig3_table["Income"], "salary", table=fig3_table, neighbor_types=["name", "company", "city"]
        )
        weak = generate_weak_labels(source_corpus, functions)
        assert all(label.label == "salary" for label in weak)
        # Weak labels should be dominated by columns that truly are salaries.
        if weak:
            truly_salary = sum(1 for label in weak if label.column.semantic_type == "salary")
            assert truly_salary / len(weak) >= 0.5

    def test_no_functions_no_labels(self, source_corpus):
        assert generate_weak_labels(source_corpus, []) == []

    def test_respect_existing_labels(self, source_corpus):
        # A deliberately over-broad rule would otherwise relabel everything.
        broad = [ValueRangeLF("salary", -1e12, 1e12)]
        respectful = generate_weak_labels(
            source_corpus, broad, config=WeakLabelingConfig(respect_existing_labels=True)
        )
        assert all(
            label.column.semantic_type in (None, "salary") for label in respectful
        )

    def test_max_examples_per_type(self, source_corpus):
        broad = [ValueRangeLF("count", -1e12, 1e12)]
        config = WeakLabelingConfig(
            respect_existing_labels=False, max_examples_per_type=5, min_confidence=0.5
        )
        weak = generate_weak_labels(source_corpus, broad, config=config)
        assert len(weak) <= 5

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            WeakLabelingConfig(min_confidence=1.5).validate()
        with pytest.raises(ConfigurationError):
            WeakLabelingConfig(max_examples_per_type=0).validate()


class TestDPBDSession:
    def test_relabel_produces_update(self, fig3_table, source_corpus):
        session = DPBDSession(source_corpus=source_corpus)
        update = session.relabel(fig3_table, "Income", "salary", previous_type="revenue")
        assert update.target_type == "salary"
        assert len(update.labeling_functions) >= 3
        assert update.num_training_examples == len(update.weak_labels) + 1
        demonstration = update.training_examples()[0]
        assert demonstration[2] == "salary"
        assert len(session.log) == 1

    def test_implicit_approval_downweights_rules(self, fig3_table, source_corpus):
        session = DPBDSession(source_corpus=source_corpus)
        update = session.approve(fig3_table, "Cities", "city", implicit=True)
        assert all(function.weight <= 0.5 for function in update.labeling_functions)

    def test_explicit_approval_keeps_full_weight(self, fig3_table, source_corpus):
        session = DPBDSession(source_corpus=source_corpus)
        update = session.approve(fig3_table, "Cities", "city", implicit=False)
        assert any(function.weight > 0.5 for function in update.labeling_functions)

    def test_session_without_corpus(self, fig3_table):
        session = DPBDSession()
        update = session.relabel(fig3_table, "Income", "salary")
        assert update.weak_labels == []
        assert update.labeling_functions
