"""Unit tests for prediction data structures."""

from __future__ import annotations

from repro.core.ontology import UNKNOWN_TYPE
from repro.core.prediction import ColumnPrediction, TablePrediction, TypeScore, merge_scores


class TestTypeScore:
    def test_confidence_is_clipped(self):
        assert TypeScore(confidence=1.7, type_name="city").confidence == 1.0
        assert TypeScore(confidence=-0.3, type_name="city").confidence == 0.0

    def test_scaled(self):
        score = TypeScore(confidence=0.8, type_name="city")
        assert score.scaled(0.5).confidence == 0.4
        assert score.scaled(0.5).type_name == "city"

    def test_ordering_by_confidence(self):
        low = TypeScore(confidence=0.2, type_name="a")
        high = TypeScore(confidence=0.9, type_name="b")
        assert max([low, high]) is high


class TestMergeScores:
    def test_keeps_maximum_per_type(self):
        merged = merge_scores(
            [
                [TypeScore(0.5, "city"), TypeScore(0.4, "country")],
                [TypeScore(0.8, "city")],
            ]
        )
        assert merged[0].type_name == "city"
        assert merged[0].confidence == 0.8
        assert {score.type_name for score in merged} == {"city", "country"}

    def test_sorted_descending(self):
        merged = merge_scores([[TypeScore(0.1, "a"), TypeScore(0.9, "b")]])
        assert [score.type_name for score in merged] == ["b", "a"]

    def test_empty(self):
        assert merge_scores([]) == []


class TestColumnPrediction:
    def test_scores_sorted_on_construction(self):
        prediction = ColumnPrediction(
            column_index=0,
            column_name="x",
            scores=[TypeScore(0.3, "b"), TypeScore(0.7, "a")],
        )
        assert prediction.predicted_type == "a"
        assert prediction.confidence == 0.7

    def test_abstained_reports_unknown(self):
        prediction = ColumnPrediction(
            column_index=0, column_name="x", scores=[TypeScore(0.9, "a")], abstained=True
        )
        assert prediction.predicted_type == UNKNOWN_TYPE
        assert prediction.confidence == 0.0

    def test_empty_scores_report_unknown(self):
        prediction = ColumnPrediction(column_index=0, column_name="x")
        assert prediction.predicted_type == UNKNOWN_TYPE

    def test_top_k_and_score_for(self):
        prediction = ColumnPrediction(
            column_index=0,
            column_name="x",
            scores=[TypeScore(0.7, "a"), TypeScore(0.3, "b"), TypeScore(0.1, "c")],
        )
        assert [score.type_name for score in prediction.top_k(2)] == ["a", "b"]
        assert prediction.score_for("b") == 0.3
        assert prediction.score_for("missing") == 0.0

    def test_to_dict(self):
        prediction = ColumnPrediction(column_index=1, column_name="x", scores=[TypeScore(0.5, "a")])
        payload = prediction.to_dict()
        assert payload["predicted_type"] == "a"
        assert payload["column_index"] == 1
        assert payload["top_k"][0]["type"] == "a"


class TestTablePrediction:
    def _prediction(self) -> TablePrediction:
        return TablePrediction(
            table_name="t",
            columns=[
                ColumnPrediction(0, "a", [TypeScore(0.9, "city")]),
                ColumnPrediction(1, "b", [TypeScore(0.2, "country")], abstained=True),
            ],
        )

    def test_len_and_iteration(self):
        prediction = self._prediction()
        assert len(prediction) == 2
        assert [p.column_name for p in prediction] == ["a", "b"]

    def test_prediction_for(self):
        prediction = self._prediction()
        assert prediction.prediction_for("a").predicted_type == "city"
        assert prediction.prediction_for("missing") is None

    def test_predicted_types_and_mapping(self):
        prediction = self._prediction()
        assert prediction.predicted_types() == ["city", UNKNOWN_TYPE]
        assert prediction.as_mapping() == {"a": "city", "b": UNKNOWN_TYPE}

    def test_abstention_rate(self):
        assert self._prediction().abstention_rate() == 0.5
        assert TablePrediction(table_name="empty").abstention_rate() == 0.0

    def test_to_dict(self):
        payload = self._prediction().to_dict()
        assert payload["table_name"] == "t"
        assert len(payload["columns"]) == 2
