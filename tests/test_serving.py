"""Serving layer: execution backends, shared profile store, async facade.

The serving layer's contract is *parity*: every execution backend, the
store-backed cache, and the async service must produce predictions identical
(bit-for-bit on the confidence floats) to the plain serial path.  These tests
pin that contract, plus the concurrency behaviours that cannot regress
silently — customer isolation under concurrent requests, eviction never
changing predictions, and graceful shutdown.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core.errors import ConfigurationError, ServingError
from repro.core.table import Column, get_active_profile_store
from repro.serving import (
    AnnotationService,
    MultiprocessBackend,
    ProfileStore,
    SerialBackend,
    ThreadedBackend,
    resolve_backend,
    shard_items,
)


def _comparable(predictions):
    """Everything except wall-clock timings (bit-exact float comparison)."""
    return [(p.table_name, p.step_trace, p.columns) for p in predictions]


def _fresh(tables):
    """Copies with cold per-column caches, as a new request would carry."""
    return [table.copy() for table in tables]


@pytest.fixture(scope="module", autouse=True)
def _no_leaked_store():
    """The shared store is process-global state; keep it out of other tests."""
    yield
    assert get_active_profile_store() is None


@pytest.fixture()
def mixed_tables(eval_corpus, fig3_table):
    """A mixed corpus: generated tables plus the hand-written Fig. 3 table."""
    return [table.copy() for table in eval_corpus] + [fig3_table.copy()]


@pytest.fixture()
def adapted_typer(pretrained_typer, fig3_table):
    """The session system with one adapted customer (idempotent per session)."""
    if "acme" not in pretrained_typer.customer_ids:
        pretrained_typer.register_customer("acme")
        pretrained_typer.give_feedback("acme", fig3_table, "Income", "salary")
        pretrained_typer.give_feedback("acme", fig3_table, "Company", "company")
    return pretrained_typer


# --------------------------------------------------------------------- shards
class TestSharding:
    def test_shards_are_contiguous_and_complete(self):
        items = list(range(11))
        shards = shard_items(items, 4)
        assert [item for shard in shards for item in shard] == items
        assert len(shards) == 4
        assert all(shards)
        assert max(len(s) for s in shards) - min(len(s) for s in shards) <= 1

    def test_more_shards_than_items(self):
        assert shard_items([1, 2], 8) == [[1], [2]]
        assert shard_items([], 3) == []

    def test_invalid_shard_count(self):
        with pytest.raises(ConfigurationError):
            shard_items([1], 0)


class TestResolveBackend:
    def test_specs(self):
        assert isinstance(resolve_backend(None), SerialBackend)
        assert isinstance(resolve_backend("serial"), SerialBackend)
        threaded = resolve_backend("threaded:3")
        assert isinstance(threaded, ThreadedBackend)
        assert threaded.max_workers == 3
        multiprocess = resolve_backend("multiprocess:2")
        assert isinstance(multiprocess, MultiprocessBackend)
        assert multiprocess.max_workers == 2

    def test_instance_passthrough(self):
        backend = ThreadedBackend(max_workers=2)
        assert resolve_backend(backend) is backend

    def test_unknown_spec(self):
        with pytest.raises(ConfigurationError):
            resolve_backend("distributed")
        with pytest.raises(ConfigurationError):
            resolve_backend("threaded:many")
        with pytest.raises(ConfigurationError):
            resolve_backend(42)

    def test_zero_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            ThreadedBackend(max_workers=0)
        with pytest.raises(ConfigurationError):
            MultiprocessBackend(max_workers=0)
        with pytest.raises(ConfigurationError):
            resolve_backend("multiprocess:0")

    def test_map_shards_preserves_order(self):
        doubler = lambda shard: [2 * item for item in shard]  # noqa: E731
        items = list(range(23))
        expected = [2 * item for item in items]
        assert SerialBackend().map_shards(doubler, items) == expected
        assert ThreadedBackend(max_workers=4).map_shards(doubler, items) == expected


# -------------------------------------------------------------------- parity
class TestBackendParity:
    def test_threaded_and_multiprocess_match_serial(self, pretrained_typer, mixed_tables):
        serial = pretrained_typer.annotate_corpus(_fresh(mixed_tables))
        threaded = pretrained_typer.annotate_corpus(_fresh(mixed_tables), backend="threaded:4")
        multiprocess = pretrained_typer.annotate_corpus(
            _fresh(mixed_tables), backend="multiprocess:4"
        )
        assert _comparable(serial) == _comparable(threaded)
        assert _comparable(serial) == _comparable(multiprocess)

    def test_adapted_customer_bulk_matches_per_table(self, adapted_typer, mixed_tables):
        per_table = [adapted_typer.annotate(t, customer_id="acme") for t in mixed_tables]
        bulk = adapted_typer.annotate_corpus(mixed_tables, customer_id="acme")
        assert _comparable(per_table) == _comparable(bulk)
        # The adapted path reports the blended source step.
        assert all(
            column.source_step == "global+local"
            for prediction in bulk
            for column in prediction.columns
        )

    def test_adapted_customer_backends_match_serial(self, adapted_typer, mixed_tables):
        serial = adapted_typer.annotate_corpus(_fresh(mixed_tables), customer_id="acme")
        threaded = adapted_typer.annotate_corpus(
            _fresh(mixed_tables), customer_id="acme", backend="threaded:2"
        )
        multiprocess = adapted_typer.annotate_corpus(
            _fresh(mixed_tables), customer_id="acme", backend="multiprocess:2"
        )
        assert _comparable(serial) == _comparable(threaded)
        assert _comparable(serial) == _comparable(multiprocess)

    def test_vectorized_blend_matches_combine_with_global(self, adapted_typer, mixed_tables):
        """The numpy blend in SigmaTyper._blend_with_local must reproduce the
        per-column reference semantics of LocalModel.combine_with_global —
        the two implementations of the W_g/W_l interpolation and the
        competing-type discount may never drift apart."""
        from repro.core.ontology import UNKNOWN_TYPE

        context = adapted_typer.customer("acme")
        local_model = context.local_model
        pipeline = adapted_typer._exhaustive_pipeline()  # noqa: SLF001
        for table in mixed_tables[:4]:
            blended = adapted_typer.annotate(table, customer_id="acme")
            reference = pipeline.annotate(table)
            for prediction, reference_prediction in zip(blended.columns, reference.columns):
                column = table.columns[prediction.column_index]
                global_scores = {
                    score.type_name: score.confidence for score in reference_prediction.scores
                }
                combined = local_model.combine_with_global(global_scores, column, table)
                combined.pop(UNKNOWN_TYPE, None)
                expected = sorted(
                    combined.items(), key=lambda item: (-item[1], item[0])
                )[: adapted_typer.config.top_k]
                assert [
                    (score.type_name, score.confidence) for score in prediction.scores
                ] == expected

    def test_unadapted_customer_matches_global(self, pretrained_typer, mixed_tables):
        if "fresh-tenant" not in pretrained_typer.customer_ids:
            pretrained_typer.register_customer("fresh-tenant")
        global_predictions = pretrained_typer.annotate_corpus(mixed_tables)
        customer_predictions = pretrained_typer.annotate_corpus(
            mixed_tables, customer_id="fresh-tenant"
        )
        assert _comparable(global_predictions) == _comparable(customer_predictions)

    def test_sharded_featurization_is_bit_identical(self, trained_classifier, eval_corpus):
        featurizer = trained_classifier.featurizer
        rows = [(column, table) for table in eval_corpus for column in table.columns]
        serial = featurizer.extract_many(rows)
        threaded = np.vstack(ThreadedBackend(max_workers=3).map_shards(featurizer.extract_many, rows))
        multiprocess = np.vstack(
            MultiprocessBackend(max_workers=2).map_shards(featurizer.extract_many, rows)
        )
        assert serial.tobytes() == threaded.tobytes()
        assert serial.tobytes() == multiprocess.tobytes()


# -------------------------------------------------------------- profile store
class TestProfileStore:
    def test_content_hash_keys_on_name_values_and_value_types(self):
        first = Column("Income", ["$ 50K", "$ 60K", None])
        second = Column("Income", ["$ 50K", "$ 60K", None], semantic_type="salary")
        assert first.content_hash() == second.content_hash()
        assert first.content_hash() != Column("Salary", ["$ 50K", "$ 60K", None]).content_hash()
        assert first.content_hash() != Column("Income", ["$ 50K", "$ 60K"]).content_hash()
        assert Column("n", [1, 2]).content_hash() != Column("n", ["1", "2"]).content_hash()

    def test_content_hash_is_injective_against_crafted_values(self):
        """Cell values may contain any bytes; framing must prevent collisions
        between differently shaped columns whose payloads concatenate alike."""
        assert (
            Column("c", ["A\x00str\x1fB"]).content_hash()
            != Column("c", ["A", "B"]).content_hash()
        )
        assert (
            Column("c\x00str\x1fA", ["B"]).content_hash()
            != Column("c", ["A", "B"]).content_hash()
        )
        assert Column("c", ["AB", ""]).content_hash() != Column("c", ["A", "B"]).content_hash()
        assert Column("cA", ["B"]).content_hash() != Column("c", ["A", "B"]).content_hash()

    def test_invalidate_cache_refreshes_hash_and_store_entry(self):
        store = ProfileStore(max_columns=8)
        with store.activated():
            column = Column("city", ["Berlin", "Paris", "Berlin"])
            assert column.value_counts() == {"Berlin": 2, "Paris": 1}
            stale_hash = column.content_hash()
            assert stale_hash in store
            column.values.append("Oslo")
            column.invalidate_cache()
            assert stale_hash not in store
            assert column.content_hash() != stale_hash
            assert column.value_counts() == {"Berlin": 2, "Paris": 1, "Oslo": 1}

    def test_short_lived_columns_share_derived_state(self):
        store = ProfileStore(max_columns=8)
        with store.activated():
            first = Column("city", ["Berlin", "Paris"])
            first.text_values()
            hits_before = store.hits
            # A brand-new column object with identical content hits the store.
            second = Column("city", ["Berlin", "Paris"])
            assert second.text_values() == ["Berlin", "Paris"]
            assert store.hits > hits_before
            assert len(store) == 1

    def test_lru_eviction_is_bounded_and_counted(self):
        store = ProfileStore(max_columns=2)
        with store.activated():
            for index in range(5):
                Column(f"c{index}", [str(index)]).text_values()
            assert len(store) == 2
            assert store.evictions == 3
            assert store.stats()["entries"] == 2

    def test_eviction_never_changes_predictions(self, pretrained_typer, mixed_tables):
        baseline = pretrained_typer.annotate_corpus(_fresh(mixed_tables))
        # A pathologically small store thrashes on every table; predictions
        # must not move.
        tiny = ProfileStore(max_columns=2)
        with tiny.activated():
            thrashed = pretrained_typer.annotate_corpus(_fresh(mixed_tables))
        assert tiny.evictions > 0
        assert _comparable(baseline) == _comparable(thrashed)

    def test_store_parity_and_warm_hits(self, pretrained_typer, mixed_tables):
        baseline = pretrained_typer.annotate_corpus(_fresh(mixed_tables))
        store = ProfileStore(max_columns=512)
        with store.activated():
            cold = pretrained_typer.annotate_corpus(_fresh(mixed_tables))
            warm = pretrained_typer.annotate_corpus(_fresh(mixed_tables))
        assert _comparable(baseline) == _comparable(cold)
        assert _comparable(baseline) == _comparable(warm)
        # The second pass reuses every namespace created by the first.
        assert store.hit_rate > 0.5
        assert get_active_profile_store() is None

    def test_store_with_threaded_backend(self, pretrained_typer, mixed_tables):
        baseline = pretrained_typer.annotate_corpus(_fresh(mixed_tables))
        store = ProfileStore(max_columns=512)
        with store.activated():
            threaded = pretrained_typer.annotate_corpus(
                _fresh(mixed_tables), backend="threaded:4"
            )
        assert _comparable(baseline) == _comparable(threaded)

    def test_activate_and_deactivate(self):
        store = ProfileStore()
        assert store.activate() is store
        assert get_active_profile_store() is store
        store.deactivate()
        assert get_active_profile_store() is None

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            ProfileStore(max_columns=0)


# ------------------------------------------------------------------- service
class TestAnnotationService:
    def test_concurrent_requests_match_direct_annotation(self, adapted_typer, mixed_tables):
        expected_global = [adapted_typer.annotate(t) for t in mixed_tables]
        expected_acme = [adapted_typer.annotate(t, customer_id="acme") for t in mixed_tables]

        async def drive():
            async with AnnotationService(
                adapted_typer, max_batch_size=16, max_batch_delay=0.05
            ) as service:
                global_results, acme_results = await asyncio.gather(
                    asyncio.gather(*[service.annotate(t) for t in mixed_tables]),
                    asyncio.gather(
                        *[service.annotate(t, customer_id="acme") for t in mixed_tables]
                    ),
                )
                return global_results, acme_results, service.stats

        global_results, acme_results, stats = asyncio.run(drive())
        assert _comparable(global_results) == _comparable(expected_global)
        assert _comparable(acme_results) == _comparable(expected_acme)
        assert stats.requests_total == 2 * len(mixed_tables)
        # Concurrent requests were coalesced into shared batches.
        assert stats.batches_total < stats.requests_total
        assert stats.largest_batch >= 2
        assert stats.requests_by_customer["acme"] == len(mixed_tables)

    def test_customers_do_not_cross_contaminate(self, adapted_typer, fig3_table):
        """Customer B (no feedback) must see pure global predictions even when
        batched together with adapted customer A's requests."""
        if "blank-tenant" not in adapted_typer.customer_ids:
            adapted_typer.register_customer("blank-tenant")
        table = fig3_table.copy()
        expected_global = adapted_typer.annotate(table)
        expected_acme = adapted_typer.annotate(table, customer_id="acme")

        async def drive():
            async with AnnotationService(
                adapted_typer, max_batch_size=8, max_batch_delay=0.05
            ) as service:
                return await asyncio.gather(
                    service.annotate(table, customer_id="acme"),
                    service.annotate(table, customer_id="blank-tenant"),
                    service.annotate(table),
                )

        acme, blank, global_ = asyncio.run(drive())
        assert _comparable([blank]) == _comparable([expected_global])
        assert _comparable([global_]) == _comparable([expected_global])
        assert _comparable([acme]) == _comparable([expected_acme])
        # The adapted customer's blend actually diverges from the global path.
        assert any(
            a.scores != g.scores for a, g in zip(acme.columns, global_.columns)
        )

    def test_unknown_customer_fails_that_request_only(self, pretrained_typer, fig3_table):
        async def drive():
            async with AnnotationService(pretrained_typer, max_batch_delay=0.01) as service:
                good, bad = await asyncio.gather(
                    service.annotate(fig3_table.copy()),
                    service.annotate(fig3_table.copy(), customer_id="no-such-tenant"),
                    return_exceptions=True,
                )
                return good, bad, service.stats.errors_total

        good, bad, errors = asyncio.run(drive())
        assert not isinstance(good, Exception)
        assert isinstance(bad, ServingError)
        assert errors == 1

    def test_shutdown_drains_then_rejects(self, pretrained_typer, fig3_table):
        async def drive():
            service = AnnotationService(pretrained_typer, max_batch_delay=0.0)
            await service.start()
            pending = [
                asyncio.ensure_future(service.annotate(fig3_table.copy())) for _ in range(3)
            ]
            await asyncio.sleep(0)  # let the requests reach the queue
            await service.shutdown()
            drained = await asyncio.gather(*pending)
            with pytest.raises(ServingError):
                await service.annotate(fig3_table.copy())
            return drained, service.is_running

        drained, running = asyncio.run(drive())
        assert len(drained) == 3
        assert all(prediction.columns for prediction in drained)
        assert not running

    def test_double_start_rejected(self, pretrained_typer):
        async def drive():
            async with AnnotationService(pretrained_typer) as service:
                with pytest.raises(ServingError):
                    await service.start()

        asyncio.run(drive())

    def test_invalid_configuration(self, pretrained_typer):
        with pytest.raises(ConfigurationError):
            AnnotationService(pretrained_typer, max_batch_size=0)
        with pytest.raises(ConfigurationError):
            AnnotationService(pretrained_typer, max_batch_delay=-1.0)


# ------------------------------------------------------------------ satellites
class TestSigmaTyperServingSatellites:
    def test_exhaustive_pipeline_declared_and_tau_synced(self, adapted_typer, fig3_table):
        adapted_typer.annotate(fig3_table, customer_id="acme")
        assert adapted_typer._exhaustive is not None  # noqa: SLF001
        original = adapted_typer.tau
        try:
            adapted_typer.set_tau(0.31)
            assert adapted_typer._exhaustive.config.tau == 0.31  # noqa: SLF001
        finally:
            adapted_typer.set_tau(original)
        adapted_typer.invalidate_exhaustive_pipeline()
        assert adapted_typer._exhaustive is None  # noqa: SLF001

    def test_calibrate_tau_matches_per_table_path(self, pretrained_typer, eval_corpus):
        """Bulk calibration must reproduce the old annotate-per-table loop."""
        original_tau = pretrained_typer.tau
        try:
            from repro.core.aggregation import calibrate_tau as calibrate_from_scores

            pretrained_typer.set_tau(0.0)
            scored = []
            for table in eval_corpus:
                prediction = pretrained_typer.annotate(table)
                for column, column_prediction in zip(table.columns, prediction.columns):
                    if column.semantic_type is None or not column_prediction.scores:
                        continue
                    scored.append(
                        (
                            column_prediction.confidence,
                            column_prediction.predicted_type == column.semantic_type,
                        )
                    )
            expected = calibrate_from_scores(scored, target_precision=0.9)
            pretrained_typer.set_tau(original_tau)

            calibrated = pretrained_typer.calibrate_tau(eval_corpus, target_precision=0.9)
            assert calibrated == expected
            assert pretrained_typer.tau == calibrated
        finally:
            pretrained_typer.set_tau(original_tau)
