"""Zero-copy shard transport: codecs, lifecycle, fallback, and parity.

Three contracts are pinned here:

* **parity** — annotating through ``multiprocess:N+shm`` (and every fallback
  path inside it) returns predictions bit-identical to the serial path;
* **lifecycle** — no ``/dev/shm`` segment survives a run, including runs
  where a forked worker crashed mid-shard or raised mid-annotation;
* **fallback** — shards the block codec cannot represent (non-table items,
  exotic cell values, oversized encodings) degrade to pickle transparently,
  never to an error or a changed prediction.
"""

from __future__ import annotations

import os
import pickle
import random
from concurrent.futures.process import BrokenProcessPool

import pytest

from datagen import mixed_table, random_prediction, random_table
from repro.core.errors import ConfigurationError, ServingError
from repro.core.prediction import ColumnPrediction, TablePrediction, TypeScore
from repro.core.table import Column, Table
from repro.serving import (
    ColumnBlockCodec,
    MultiprocessBackend,
    PickleTransport,
    PredictionBlockCodec,
    ShmTransport,
    ThreadedBackend,
    resolve_backend,
    resolve_transport,
    reset_transport_stats,
    transport_stats,
)
from repro.serving.transport import (
    RESULT_SEGMENT_PREFIX,
    SHARD_SEGMENT_PREFIX,
    UnsupportedPayloadError,
)

SHM_DIR = "/dev/shm"


def _our_segments() -> list[str]:
    """Names of live shared-memory segments created by the shard transport."""
    if not os.path.isdir(SHM_DIR):  # pragma: no cover - non-Linux fallback
        return []
    return sorted(
        name
        for name in os.listdir(SHM_DIR)
        if name.startswith((SHARD_SEGMENT_PREFIX, RESULT_SEGMENT_PREFIX))
    )


@pytest.fixture(autouse=True)
def _no_segment_leaks():
    """Every test in this module must leave /dev/shm exactly as it found it."""
    before = _our_segments()
    yield
    assert _our_segments() == before, "test leaked shared-memory segments"


def _comparable(predictions):
    """Everything except wall-clock timings (bit-exact float comparison)."""
    return [(p.table_name, p.step_trace, p.columns) for p in predictions]


def _fresh(tables):
    return [table.copy() for table in tables]


# The canonical "every supported cell type" specimen lives in datagen so the
# codec, kernel, and net-transport suites all fuzz the same value space.
_mixed_table = mixed_table


# ---------------------------------------------------------------- column block
class TestColumnBlockCodec:
    def test_roundtrip_preserves_values_types_and_boundaries(self):
        tables = [_mixed_table(), Table.from_columns_dict({"City": ["Berlin", "Paris"]}, name="t2")]
        block = ColumnBlockCodec.decode(memoryview(bytes(ColumnBlockCodec.encode_tables(tables))))
        assert block.num_tables == 2
        for index, original in enumerate(tables):
            view = Table.from_block(block, index)
            assert view.name == original.name
            assert view.metadata == original.metadata
            assert view.column_names == original.column_names
            for view_column, original_column in zip(view.columns, original.columns):
                assert view_column.semantic_type == original_column.semantic_type
                assert view_column.metadata == original_column.metadata
                decoded = list(view_column.values)
                assert len(decoded) == len(original_column.values)
                for got, expected in zip(decoded, original_column.values):
                    assert type(got) is type(expected)
                    if isinstance(expected, float) and expected != expected:
                        assert got != got  # NaN round-trips
                    else:
                        assert got == expected

    def test_view_columns_share_content_hash_with_originals(self):
        table = _mixed_table()
        block = ColumnBlockCodec.decode(
            memoryview(bytes(ColumnBlockCodec.encode_tables([table])))
        )
        view = Table.from_block(block, 0)
        for view_column, original_column in zip(view.columns, table.columns):
            assert view_column.content_hash() == original_column.content_hash()

    def test_values_view_is_lazy_and_supports_sequence_protocol(self):
        table = Table.from_columns_dict({"c": ["a", "b", "c", "d"]}, name="t")
        block = ColumnBlockCodec.decode(
            memoryview(bytes(ColumnBlockCodec.encode_tables([table])))
        )
        values = Table.from_block(block, 0).columns[0].values
        assert len(values) == 4
        assert values[1] == "b" and values[-1] == "d"
        assert values[1:3] == ["b", "c"]
        assert "c" in values and list(values) == ["a", "b", "c", "d"]
        with pytest.raises(IndexError):
            values[7]

    def test_closed_block_raises_instead_of_reading_freed_memory(self):
        table = Table.from_columns_dict({"c": ["x"]}, name="t")
        block = ColumnBlockCodec.decode(
            memoryview(bytes(ColumnBlockCodec.encode_tables([table])))
        )
        view = Table.from_block(block, 0)
        block.close()
        with pytest.raises(ServingError):
            view.columns[0].values[0]

    def test_unsupported_cell_type_raises_for_fallback(self):
        table = Table.from_columns_dict({"c": [{"not": "scalar"}]}, name="t")
        with pytest.raises(UnsupportedPayloadError):
            ColumnBlockCodec.encode_tables([table])

    def test_subclass_scalars_are_rejected_not_silently_downcast(self):
        import numpy as np

        table = Table.from_columns_dict({"c": [np.float64(1.5)]}, name="t")
        with pytest.raises(UnsupportedPayloadError):
            ColumnBlockCodec.encode_tables([table])

    def test_from_view_skips_materialization(self):
        view_values = ("a", "b")  # any immutable sequence
        column = Column.from_view("c", view_values, semantic_type="city")
        assert column.values is view_values
        assert column.semantic_type == "city"
        assert column.copy().values == ["a", "b"]


# ----------------------------------------------------------- prediction records
class TestPredictionBlockCodec:
    def _prediction(self) -> TablePrediction:
        return TablePrediction(
            table_name="t",
            columns=[
                ColumnPrediction(
                    column_index=0,
                    column_name="Income",
                    scores=[TypeScore(0.875, "salary"), TypeScore(0.25, "price")],
                    source_step="header_matching",
                    abstained=False,
                    step_scores={
                        "header_matching": [TypeScore(0.875, "salary")],
                        "value_lookup": [],
                    },
                ),
                ColumnPrediction(
                    column_index=1,
                    column_name="odd □ name",
                    scores=[],
                    source_step="",
                    abstained=True,
                ),
            ],
            step_trace={"header_matching": 2, "value_lookup": 1},
            step_seconds={"header_matching": 0.125},
        )

    def test_roundtrip_is_exact(self):
        prediction = self._prediction()
        blob = PredictionBlockCodec.encode_predictions([prediction])
        (decoded,) = PredictionBlockCodec.decode_predictions(memoryview(bytes(blob)))
        assert decoded.table_name == prediction.table_name
        assert decoded.step_trace == prediction.step_trace
        assert decoded.step_seconds == prediction.step_seconds
        assert decoded.columns == prediction.columns

    def test_non_prediction_results_raise_for_fallback(self):
        with pytest.raises(UnsupportedPayloadError):
            PredictionBlockCodec.encode_predictions([{"not": "a prediction"}])


# ------------------------------------------------------------------ spec seam
class TestTransportSpecs:
    def test_multiprocess_spec_selects_transport(self):
        backend = resolve_backend("multiprocess:4+shm")
        assert isinstance(backend, MultiprocessBackend)
        assert backend.max_workers == 4
        assert backend.transport.name == "shm"
        assert backend.describe()["transport"] == "shm"
        assert resolve_backend("multiprocess+pickle").transport.name == "pickle"
        assert resolve_backend("multiprocess:2").transport.name == "pickle"

    def test_transport_spec_rejected_off_multiprocess(self):
        with pytest.raises(ConfigurationError):
            resolve_backend("serial+shm")
        with pytest.raises(ConfigurationError):
            resolve_backend("threaded:2+shm")

    def test_unknown_transport_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_backend("multiprocess:2+arrow")
        with pytest.raises(ConfigurationError):
            resolve_transport(42)

    def test_resolve_transport(self):
        assert resolve_transport(None).name == "pickle"
        assert resolve_transport("shm").name == "shm"
        transport = ShmTransport()
        assert resolve_transport(transport) is transport
        with pytest.raises(ConfigurationError):
            ShmTransport(max_segment_bytes=0)


# ------------------------------------------------------------------- lifecycle
def _shard_names(shard):
    return [[column.name for column in table.columns] for table in shard]


class TestLifecycle:
    def test_success_path_unlinks_every_segment(self):
        transport = ShmTransport()
        backend = MultiprocessBackend(max_workers=3, transport=transport)
        tables = [_mixed_table().copy() for _ in range(6)]
        results = backend.map_shards(_shard_names, tables)
        assert results == _shard_names(tables)
        assert transport.stats.segments_created > 0
        assert transport.stats.segments_created == transport.stats.segments_unlinked
        assert _our_segments() == []

    def test_worker_crash_mid_shard_leaks_nothing(self):
        transport = ShmTransport()
        backend = MultiprocessBackend(max_workers=2, transport=transport)
        tables = [_mixed_table().copy() for _ in range(4)]

        def crash(shard):
            os._exit(13)  # simulate a hard worker death, not an exception

        with pytest.raises(BrokenProcessPool):
            backend.map_shards(crash, tables)
        assert transport.stats.segments_created > 0
        assert _our_segments() == []

    def test_worker_exception_mid_shard_propagates_and_leaks_nothing(self):
        backend = MultiprocessBackend(max_workers=2, transport="shm")
        tables = [_mixed_table().copy() for _ in range(4)]

        def boom(shard):
            raise ValueError("annotation failed mid-shard")

        with pytest.raises(ValueError, match="mid-shard"):
            backend.map_shards(boom, tables)
        assert _our_segments() == []

    def test_encode_failure_mid_batch_releases_earlier_segments(self):
        """If encoding shard N fails (e.g. /dev/shm exhaustion), the segments
        already created for shards 0..N-1 must still be unlinked."""
        transport = ShmTransport()
        original_encode = transport.encode_shard
        calls = {"n": 0}

        def failing_encode(items):
            calls["n"] += 1
            if calls["n"] == 2:
                raise OSError("no space left on /dev/shm")
            return original_encode(items)

        transport.encode_shard = failing_encode
        backend = MultiprocessBackend(max_workers=2, transport=transport)
        tables = [_mixed_table().copy() for _ in range(4)]
        with pytest.raises(OSError, match="no space left"):
            backend.map_shards(_shard_names, tables)
        assert transport.stats.segments_created == 1
        assert transport.stats.segments_unlinked == 1
        assert _our_segments() == []

    def test_orphaned_result_segment_is_reclaimed_by_release(self):
        """A worker that died after creating its result segment but before
        reporting it back leaves a deterministically named orphan; release()
        must find and unlink it."""
        from multiprocessing import shared_memory

        transport = ShmTransport()
        payload = transport.encode_shard([_mixed_table()])
        assert payload[0] == "shm"
        uid = payload[1]
        # repro-lint: disable=RL003 deliberately orphaned to simulate a dead worker; release() below must reclaim it
        orphan = shared_memory.SharedMemory(
            create=True, name=f"{RESULT_SEGMENT_PREFIX}{uid}", size=16
        )
        orphan.close()
        transport.release(payload)
        assert _our_segments() == []
        # release is idempotent.
        transport.release(payload)


# -------------------------------------------------------------------- fallback
class TestPickleFallback:
    def test_results_aliasing_input_views_survive_the_trip(self):
        """A shard function may return the view-backed input tables
        themselves; the escaping lazy views must be materialized, not shipped
        as dead pointers into an unlinked segment."""
        transport = ShmTransport()
        backend = MultiprocessBackend(max_workers=2, transport=transport)
        tables = [_mixed_table().copy() for _ in range(4)]
        echoed = backend.map_shards(lambda shard: shard, tables)
        assert transport.stats.pickle_fallbacks == 0  # shards rode shm
        assert transport.stats.result_pickle_fallbacks == 2  # tables are not predictions
        for got, expected in zip(echoed, tables):
            assert got.name == expected.name
            for got_column, expected_column in zip(got.columns, expected.columns):
                assert isinstance(got_column.values, list)  # views were materialized
                # content_hash covers every value with its exact type (and is
                # NaN-tolerant, unlike list equality).
                assert got_column.content_hash() == expected_column.content_hash()
        assert _our_segments() == []

    def test_non_table_items_fall_back(self):
        transport = ShmTransport()
        backend = MultiprocessBackend(max_workers=2, transport=transport)
        doubled = backend.map_shards(lambda shard: [2 * x for x in shard], list(range(10)))
        assert doubled == [2 * x for x in range(10)]
        assert transport.stats.pickle_fallbacks == 2
        # Integer results cannot ride the record codec either.
        assert transport.stats.result_pickle_fallbacks == 2
        assert transport.stats.segments_created == 0

    def test_unsupported_cell_values_fall_back(self):
        transport = ShmTransport()
        backend = MultiprocessBackend(max_workers=2, transport=transport)
        tables = [
            Table.from_columns_dict({"c": [("tuple", "cell")]}, name=f"t{i}") for i in range(4)
        ]
        results = backend.map_shards(_shard_names, tables)
        assert results == _shard_names(tables)
        assert transport.stats.pickle_fallbacks == 2

    def test_oversized_shard_falls_back(self):
        transport = ShmTransport(max_segment_bytes=64)
        backend = MultiprocessBackend(max_workers=2, transport=transport)
        tables = [_mixed_table().copy() for _ in range(4)]
        results = backend.map_shards(_shard_names, tables)
        assert results == _shard_names(tables)
        assert transport.stats.pickle_fallbacks == 2
        assert "max_segment_bytes" in transport.stats.last_fallback_reason
        assert transport.stats.segments_created == 0
        assert _our_segments() == []

    def test_oversized_results_fall_back_while_shard_uses_shm(self):
        """Shard fits the segment budget, results do not: the worker must
        return pickled results rather than fail (per-leg fallback)."""
        small = Table.from_columns_dict({"c": ["x", "y"]}, name="t")
        shard_size = len(ColumnBlockCodec.encode_tables([small, small]))
        transport = ShmTransport(max_segment_bytes=shard_size)
        backend = MultiprocessBackend(max_workers=2, transport=transport)

        def fat_predictions(shard):
            return [
                TablePrediction(
                    table_name=table.name,
                    columns=[
                        ColumnPrediction(
                            column_index=0,
                            column_name="c" * 4096,
                            scores=[TypeScore(0.5, "city")],
                        )
                    ],
                )
                for table in shard
            ]

        tables = [small.copy() for _ in range(4)]
        results = backend.map_shards(fat_predictions, tables)
        assert [r.columns[0].column_name for r in results] == ["c" * 4096] * 4
        # The legs fall back independently and are counted independently.
        assert transport.stats.pickle_fallbacks == 0
        assert transport.stats.result_pickle_fallbacks == 2
        assert transport.stats.segments_created == transport.stats.segments_unlinked
        assert _our_segments() == []


# --------------------------------------------------------------------- parity
class TestTransportParity:
    def test_shm_annotation_matches_serial_and_pickle(self, pretrained_typer, eval_corpus):
        tables = [table.copy() for table in eval_corpus]
        serial = pretrained_typer.annotate_corpus(_fresh(tables))
        via_pickle = pretrained_typer.annotate_corpus(
            _fresh(tables), backend="multiprocess:2+pickle"
        )
        via_shm = pretrained_typer.annotate_corpus(_fresh(tables), backend="multiprocess:2+shm")
        assert _comparable(serial) == _comparable(via_pickle)
        assert _comparable(serial) == _comparable(via_shm)
        assert _our_segments() == []

    def test_shm_parity_across_worker_counts(self, pretrained_typer, eval_corpus):
        tables = [table.copy() for table in eval_corpus]
        serial = pretrained_typer.annotate_corpus(_fresh(tables))
        for spec in ("multiprocess:3+shm", "multiprocess:4+shm"):
            sharded = pretrained_typer.annotate_corpus(_fresh(tables), backend=spec)
            assert _comparable(sharded) == _comparable(serial), spec

    def test_shm_ships_fewer_bytes_than_pickle(self, pretrained_typer, eval_corpus):
        tables = [table.copy() for table in eval_corpus]
        pickle_transport = PickleTransport()
        shm_transport = ShmTransport()
        pretrained_typer.annotate_corpus(
            _fresh(tables), backend=MultiprocessBackend(2, transport=pickle_transport)
        )
        pretrained_typer.annotate_corpus(
            _fresh(tables), backend=MultiprocessBackend(2, transport=shm_transport)
        )
        assert shm_transport.stats.pickle_fallbacks == 0
        assert shm_transport.stats.shards == pickle_transport.stats.shards
        # The acceptance bar proper (≥ 5×) is pinned by the E13 benchmark on a
        # larger corpus; here we require a clear win on the tiny test corpus.
        assert shm_transport.stats.bytes_shipped * 2 < pickle_transport.stats.bytes_shipped

    def test_pickle_transport_accounting_matches_actual_pickle(self):
        transport = PickleTransport()
        items = [_mixed_table()]
        payload = transport.encode_shard(items)
        assert transport.stats.bytes_shipped >= len(pickle.dumps(items, pickle.HIGHEST_PROTOCOL))
        decoded, cleanup = transport.open_shard(payload)
        cleanup()
        assert decoded[0].column_names == items[0].column_names

    def test_threaded_backend_untouched_by_transport_seam(self, pretrained_typer, eval_corpus):
        tables = [table.copy() for table in eval_corpus]
        serial = pretrained_typer.annotate_corpus(_fresh(tables))
        threaded = pretrained_typer.annotate_corpus(_fresh(tables), backend=ThreadedBackend(2))
        assert _comparable(serial) == _comparable(threaded)

    def test_summary_reports_shard_transport_bytes(self, pretrained_typer, eval_corpus):
        tables = [table.copy() for table in eval_corpus][:4]
        pretrained_typer.annotate_corpus(_fresh(tables), backend="multiprocess:2+shm")
        summary = pretrained_typer.summary()
        assert "shard_transport" in summary
        assert summary["shard_transport"]["shm"]["shards"] > 0
        assert summary["shard_transport"]["shm"]["bytes_shipped"] > 0


# ------------------------------------------------------- property-style fuzz
class TestCodecFuzz:
    """Seeded 500-trial round-trip fuzz over the full supported value space.

    ``datagen.random_table`` / ``random_prediction`` draw random tag mixes —
    bigints, NaN/inf, non-ASCII and control characters, empty columns and
    zero-row tables, nested metadata — and every trial must round-trip
    bit-exactly through the block codecs.  Failures reproduce from the seed.
    """

    def test_column_block_roundtrip_500_random_tables(self):
        rng = random.Random(0xC0DEC)
        for trial in range(500):
            table = random_table(rng)
            blob = ColumnBlockCodec.encode_tables([table])
            block = ColumnBlockCodec.decode(memoryview(bytes(blob)))
            view = Table.from_block(block, 0)
            context = f"trial {trial}, table {table.name!r}"
            assert view.name == table.name, context
            assert view.metadata == table.metadata, context
            assert view.column_names == table.column_names, context
            for view_column, original in zip(view.columns, table.columns):
                assert view_column.semantic_type == original.semantic_type, context
                assert view_column.metadata == original.metadata, context
                decoded = list(view_column.values)
                assert len(decoded) == len(original.values), context
                for got, expected in zip(decoded, original.values):
                    assert type(got) is type(expected), (context, got, expected)
                    if isinstance(expected, float) and expected != expected:
                        assert got != got, context
                    else:
                        assert got == expected, (context, got, expected)

    def test_multi_table_shards_roundtrip(self):
        rng = random.Random(0x5EED)
        for trial in range(50):
            tables = [random_table(rng) for _ in range(rng.randint(2, 5))]
            block = ColumnBlockCodec.decode(
                memoryview(bytes(ColumnBlockCodec.encode_tables(tables)))
            )
            assert block.num_tables == len(tables)
            for index, original in enumerate(tables):
                view = Table.from_block(block, index)
                assert view.name == original.name
                assert [list(c.values) == list(o.values) or True for c, o in zip(view.columns, original.columns)]
                for view_column, original_column in zip(view.columns, original.columns):
                    assert view_column.content_hash() == original_column.content_hash()

    def test_prediction_block_roundtrip_500_random_predictions(self):
        rng = random.Random(0xFACADE)
        for trial in range(500):
            prediction = random_prediction(rng)
            blob = PredictionBlockCodec.encode_predictions([prediction])
            (decoded,) = PredictionBlockCodec.decode_predictions(memoryview(bytes(blob)))
            context = f"trial {trial}"
            assert decoded.table_name == prediction.table_name, context
            assert decoded.step_trace == prediction.step_trace, context
            assert decoded.step_seconds == prediction.step_seconds, context
            assert len(decoded.columns) == len(prediction.columns), context
            for got, expected in zip(decoded.columns, prediction.columns):
                assert got.column_index == expected.column_index, context
                assert got.column_name == expected.column_name, context
                assert got.source_step == expected.source_step, context
                assert got.abstained == expected.abstained, context
                assert got.scores == expected.scores, context
                assert got.step_scores == expected.step_scores, context


# ---------------------------------------------------------- stats aggregation
class TestTransportStatsAggregation:
    """The process-wide aggregate is keyed by transport uid: re-resolving an
    in-use transport (or cloning one across a process boundary) must never
    double count, and retired instances must not lose their history."""

    def test_re_resolving_an_in_use_transport_counts_once(self):
        # Regression: the name-keyed delta aggregate double counted when a
        # transport was re-resolved mid-run (instance + aggregate both fed).
        reset_transport_stats()
        transport = ShmTransport()
        payload = transport.encode_shard(["not-a-table"])
        transport.release(payload)
        assert resolve_transport(transport) is transport  # mid-run re-resolution
        resolve_transport(transport)
        payload = transport.encode_shard(["still-not-a-table"])
        transport.release(payload)
        aggregate = transport_stats()["shm"]
        assert transport.stats.shards == 2
        assert aggregate["shards"] == 2
        assert transport.stats.pickle_fallbacks == 2
        assert aggregate["pickle_fallbacks"] == 2

    def test_two_instances_of_one_name_sum(self):
        reset_transport_stats()
        first, second = PickleTransport(), PickleTransport()
        for transport in (first, second):
            transport.release(transport.encode_shard(["x"]))
        assert transport_stats()["pickle"]["shards"] == 2

    def test_retired_instances_keep_their_counts(self):
        import gc

        reset_transport_stats()
        transport = ShmTransport()
        transport.release(transport.encode_shard(["not-a-table"]))
        del transport
        gc.collect()
        aggregate = transport_stats()["shm"]
        assert aggregate["shards"] == 1
        assert aggregate["pickle_fallbacks"] == 1

    def test_reset_zeroes_the_aggregate_but_not_instances(self):
        transport = ShmTransport()
        transport.release(transport.encode_shard(["not-a-table"]))
        reset_transport_stats()
        assert "shm" not in transport_stats()
        assert transport.stats.shards == 1  # instance counters untouched
        transport.release(transport.encode_shard(["again"]))
        assert transport_stats()["shm"]["shards"] == 1  # only post-reset delta

    def test_unpickled_clone_is_a_distinct_stats_owner(self):
        reset_transport_stats()
        transport = ShmTransport()
        transport.release(transport.encode_shard(["not-a-table"]))
        clone = pickle.loads(pickle.dumps(transport))
        assert clone.uid != transport.uid
        assert clone.stats.shards == 0
        clone.release(clone.encode_shard(["other"]))
        assert transport_stats()["shm"]["shards"] == 2
