"""Fork safety and live cross-process sharing of the persistent store.

Two contracts are pinned here, both extensions of the serving layer's parity
rule:

* **Fork safety** — a child forked at *any* moment (including while the
  write-behind flusher holds the store lock, the classic inherited-RLock
  deadlock) gets a usable store: fresh lock, no dead flusher thread, a
  per-pid segment writer of its own.
* **Live sharing** — a second live store (same directory, another process or
  another instance) serves a sibling's freshly flushed entries through the
  sidecar index journals **without any restart**, bit-identically, at a
  ≥ 90% warm rate; every failure mode (corrupt shared record, a sibling's
  segment compacted away, torn journal tails) degrades to a recomputing
  miss, never to a crash or a wrong prediction.

The multiprocess cases run under ``multiprocess:2``-style forked workers even
on the 1-CPU CI container — parity and fork safety, not speedup, are the
assertions there (the canonical caveat in ``docs/SERVING.md``).
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import threading
import time

import pytest

from repro.core.table import Column, get_active_profile_store
from repro.serving import AnnotationService, PersistentProfileStore

_HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
fork_only = pytest.mark.skipif(not _HAS_FORK, reason="requires the fork start method")


def _comparable(predictions):
    """Everything except wall-clock timings (bit-exact float comparison)."""
    return [(p.table_name, p.step_trace, p.columns) for p in predictions]


def _fresh(tables):
    """Copies with cold per-column caches, as a new request would carry."""
    return [table.copy() for table in tables]


def _segments(directory):
    return sorted(directory.glob("segment-*.seg"))


def _journals(directory):
    return sorted(directory.glob("index-*.idx"))


def _dead_pid() -> int:
    """A pid guaranteed dead: fork a child that exits immediately, reap it."""
    ctx = multiprocessing.get_context("fork")
    process = ctx.Process(target=os._exit, args=(0,))
    process.start()
    process.join()
    assert process.pid is not None
    return process.pid


@pytest.fixture(autouse=True)
def _no_leaked_store():
    yield
    assert get_active_profile_store() is None


@pytest.fixture()
def shared_tables(eval_corpus, fig3_table):
    return [table.copy() for table in eval_corpus] + [fig3_table.copy()]


# ---------------------------------------------------------------- live sharing
class TestLiveSharing:
    def test_second_live_store_serves_siblings_flushed_keys(
        self, pretrained_typer, shared_tables, tmp_path
    ):
        """The PR's acceptance bar, in-process form: a store opened *before*
        a sibling flushes (so recovery can have seen nothing) serves ≥ 90% of
        the sibling's flushed keys warm via the sidecar index, bit-identically,
        without any reopen."""
        baseline = _comparable(pretrained_typer.annotate_corpus(_fresh(shared_tables)))

        reader = PersistentProfileStore(tmp_path, flush_interval=0)
        writer = PersistentProfileStore(tmp_path, flush_interval=0)
        with writer.activated():
            first_run = pretrained_typer.annotate_corpus(_fresh(shared_tables))
            writer.flush()
        assert _comparable(first_run) == baseline
        flushed = writer.disk_entries
        assert flushed > 0
        assert reader.recovered_entries == 0  # nothing existed at its open

        with reader.activated():
            second_run = pretrained_typer.annotate_corpus(_fresh(shared_tables))
            summary = pretrained_typer.summary()
        assert _comparable(second_run) == baseline
        assert reader.shared_hits >= 0.9 * flushed, reader.stats()
        assert reader.hit_rate >= 0.9, reader.stats()
        assert reader.disk_hits == 0  # everything warm came from the sibling
        # The cross-process counter is observable through SigmaTyper.summary().
        assert summary["profile_store"]["shared_hits"] == reader.shared_hits
        assert summary["profile_store"]["shared_entries"] == reader.shared_entries
        writer.close()
        reader.close()

    @fork_only
    def test_forked_sibling_process_shares_flushed_entries_live(
        self, pretrained_typer, shared_tables, tmp_path
    ):
        """The PR's acceptance bar, cross-process form: a forked child
        annotates and flushes; the parent — whose store has been open the
        whole time — serves ≥ 90% of the child's flushed keys warm via the
        sidecar index with bit-identical predictions, no restart."""
        ctx = multiprocessing.get_context("fork")
        baseline = _comparable(pretrained_typer.annotate_corpus(_fresh(shared_tables)))
        store = PersistentProfileStore(tmp_path, flush_interval=0)
        queue = ctx.Queue()

        def sibling_main():
            try:
                with store.activated():
                    predictions = pretrained_typer.annotate_corpus(_fresh(shared_tables))
                    store.flush()
                queue.put(
                    (
                        "ok",
                        _comparable(predictions) == baseline,
                        store.disk_entries,
                        store._writer_pid == os.getpid(),  # noqa: SLF001
                    )
                )
            except Exception as exc:  # noqa: BLE001
                queue.put(("error", repr(exc), 0, False))

        process = ctx.Process(target=sibling_main)
        process.start()
        status, sibling_parity, sibling_flushed, writer_pinned = queue.get(timeout=300)
        process.join(timeout=60)
        assert status == "ok", status
        assert process.exitcode == 0
        assert sibling_parity, "the forked sibling's predictions diverged"
        assert sibling_flushed > 0
        assert writer_pinned, "sibling flushed into a segment it does not own"

        with store.activated():
            served = pretrained_typer.annotate_corpus(_fresh(shared_tables))
        assert _comparable(served) == baseline
        assert store.shared_hits >= 0.9 * sibling_flushed, store.stats()
        assert store.hit_rate >= 0.9, store.stats()
        store.close()

    def test_shared_entry_is_visible_via_contains(self, tmp_path):
        reader = PersistentProfileStore(tmp_path, flush_interval=0)
        writer = PersistentProfileStore(tmp_path, flush_interval=0)
        column = Column("city", ["Berlin", "Paris"])
        with writer.activated():
            column.value_counts()
            writer.flush()
        with reader.activated():
            # A probe of any missing key tails the sibling journals.
            Column("unrelated", ["zzz"]).value_counts()
            assert column.content_hash() in reader
            assert Column("city", ["Berlin", "Paris"]).value_counts() == {
                "Berlin": 1,
                "Paris": 1,
            }
        assert reader.shared_hits == 1
        writer.close()
        reader.close()

    def test_sibling_tombstones_propagate_on_tail(self, tmp_path):
        reader = PersistentProfileStore(tmp_path, flush_interval=0)
        writer = PersistentProfileStore(tmp_path, flush_interval=0)
        with writer.activated():
            stale = Column("stale", ["x", "y"])
            stale.value_counts()
            writer.flush()
            stale_hash = stale.content_hash()
            keep = Column("keep", ["k"])
            keep.value_counts()
            writer.flush()
            stale.values.append("z")
            stale.invalidate_cache()  # appends a tombstone to segment + journal
        with reader.activated():
            assert Column("keep", ["k"]).value_counts() == {"k": 1}
        assert reader.shared_hits == 1
        assert stale_hash not in reader  # the tombstone was tailed too
        writer.close()
        reader.close()

    def test_tailed_tombstone_drops_the_key_from_every_local_tier(self, tmp_path):
        """A sibling's tombstone must evict our own on-disk record and LRU
        entry too, so our next compaction cannot resurrect the key."""
        first = PersistentProfileStore(tmp_path, flush_interval=0)
        column = Column("stale", ["x", "y"])
        with first.activated():
            column.value_counts()
            first.flush()
        stale_hash = column.content_hash()
        # A sibling that recovered the record tombstones it.
        second = PersistentProfileStore(tmp_path, flush_interval=0)
        assert second.invalidate(stale_hash) is True
        assert second.tombstones == 1
        # The writer tails the tombstone on its next miss and drops its own
        # in-memory and on-disk copies.
        with first.activated():
            Column("probe", ["zzz"]).value_counts()
        assert stale_hash not in first
        assert first.disk_entries == 0
        first.compact()
        reopened_after = PersistentProfileStore(tmp_path, flush_interval=0)
        assert stale_hash not in reopened_after  # compaction did not resurrect
        first.close()
        second.close()
        reopened_after.close()

    def test_corrupt_shared_record_degrades_to_a_miss(self, tmp_path):
        """Satellite contract: a damaged sibling record is a recomputing miss
        (crc-checked read, counter bumped), never a crash or a wrong value."""
        reader = PersistentProfileStore(tmp_path, flush_interval=0)
        writer = PersistentProfileStore(tmp_path, flush_interval=0)
        with writer.activated():
            Column("city", ["Berlin", "Paris"]).value_counts()
            writer.flush()
        (segment,) = _segments(tmp_path)
        data = bytearray(segment.read_bytes())
        data[-3] ^= 0xFF  # flip a byte inside the record's payload
        segment.write_bytes(bytes(data))

        with reader.activated():
            assert Column("city", ["Berlin", "Paris"]).value_counts() == {
                "Berlin": 1,
                "Paris": 1,
            }
        assert reader.shared_hits == 0
        assert reader.corrupt_records_skipped >= 1
        assert reader.misses >= 1
        writer.close()
        reader.close()

    def test_stale_shared_pointer_relocates_after_sibling_compaction(self, tmp_path):
        """A sibling that compacted (and whose old segment is gone) re-announces
        every record in its journal; a reader holding a stale pointer re-tails
        and serves the record from its new home."""
        reader = PersistentProfileStore(tmp_path, flush_interval=0)
        writer = PersistentProfileStore(tmp_path, flush_interval=0)
        column = Column("keep", ["a", "b"])
        with writer.activated():
            column.non_null_values()
            writer.flush()
            column.value_counts()
            writer.flush()  # superseding record -> dead bytes to compact
        with reader.activated():
            # Tail the journal (via any miss) so the reader learns the
            # record's *pre-compaction* location.
            Column("probe", ["zzz"]).value_counts()
        assert column.content_hash() in reader

        old_segments = set(_segments(tmp_path))
        writer.compact()
        # Deferral keeps the old segments for the live reader; delete them
        # anyway to simulate a sibling that could not defer (another host, an
        # older store version) — the reader must relocate, not crash.
        new_segments = set(_segments(tmp_path)) - old_segments
        assert new_segments
        for path in old_segments:
            path.unlink(missing_ok=True)

        with reader.activated():
            assert Column("keep", ["a", "b"]).value_counts() == {"a": 1, "b": 1}
        assert reader.shared_hits == 1
        assert reader.corrupt_records_skipped >= 1  # the stale read degraded
        writer.close()
        reader.close()

    def test_sharing_can_be_disabled(self, tmp_path):
        writer = PersistentProfileStore(
            tmp_path, flush_interval=0, share_across_processes=False
        )
        with writer.activated():
            Column("solo", ["1"]).value_counts()
            writer.flush()
        assert not _journals(tmp_path)
        reader = PersistentProfileStore(
            tmp_path, flush_interval=0, share_across_processes=False
        )
        assert reader.recovered_entries == 1  # restart-style recovery still works
        assert reader.stats()["share_across_processes"] is False
        writer.close()
        reader.close()


# ------------------------------------------------------- compaction vs siblings
class TestCompactionVsLiveSiblings:
    def test_compaction_defers_retiring_segments_while_a_sibling_is_live(self, tmp_path):
        ours = PersistentProfileStore(tmp_path, flush_interval=0)
        column = Column("ours", ["a", "b"])
        with ours.activated():
            column.non_null_values()
            ours.flush()
            column.value_counts()
            ours.flush()  # superseding record -> dead bytes
        old_segments = set(_segments(tmp_path))
        sibling = PersistentProfileStore(tmp_path, flush_interval=0)  # live sibling

        ours.compact()
        assert ours.stats()["deferred_segments"] >= 1
        for path in old_segments:
            assert path.exists(), "compaction retired a segment a live sibling indexes"
        # The sibling still serves from the deferred segment it recovered.
        with sibling.activated():
            assert Column("ours", ["a", "b"]).value_counts() == {"a": 1, "b": 1}
        assert sibling.disk_hits == 1
        sibling.close()
        ours.close()

    def test_clean_close_releases_liveness(self, tmp_path):
        """A cleanly closed store deletes its journal, so it stops counting
        as a live sibling — compaction must not defer forever for it."""
        ours = PersistentProfileStore(tmp_path, flush_interval=0)
        column = Column("ours", ["a", "b"])
        with ours.activated():
            column.non_null_values()
            ours.flush()
            column.value_counts()
            ours.flush()
        old_segments = set(_segments(tmp_path))
        sibling = PersistentProfileStore(tmp_path, flush_interval=0)
        sibling.close()
        assert sibling._journal_path is None  # noqa: SLF001

        ours.compact()
        assert ours.stats()["deferred_segments"] == 0
        for path in old_segments:
            assert not path.exists(), "closed sibling still deferred compaction"
        ours.close()

    @fork_only
    def test_deferred_segments_retire_once_no_sibling_is_live(self, tmp_path):
        ours = PersistentProfileStore(tmp_path, flush_interval=0)
        column = Column("ours", ["a", "b"])
        with ours.activated():
            column.non_null_values()
            ours.flush()
            column.value_counts()
            ours.flush()
        old_segments = set(_segments(tmp_path))
        sibling = PersistentProfileStore(tmp_path, flush_interval=0)
        sibling_journal = sibling._journal_path  # noqa: SLF001

        ours.compact()
        assert ours.stats()["deferred_segments"] >= 1
        # Simulate the sibling being SIGKILLed (a clean close() deletes its
        # journal; a killed process leaves it behind): re-home the journal
        # under a pid that is no longer running.
        assert sibling_journal is not None
        dead_journal = tmp_path / f"index-{_dead_pid()}-0.idx"
        sibling_journal.rename(dead_journal)

        ours.compact()
        assert ours.stats()["deferred_segments"] == 0
        for path in old_segments:
            assert not path.exists(), "deferred segment survived a sibling-free compaction"
        assert not dead_journal.exists(), "dead sibling journal was not collected"
        with ours.activated():
            assert Column("ours", ["a", "b"]).value_counts() == {"a": 1, "b": 1}
        sibling.close()  # tolerates its journal having been re-homed away
        ours.close()


# ----------------------------------------------------------------- fork safety
@fork_only
class TestForkSafety:
    def test_fork_while_the_store_lock_is_held(self, tmp_path):
        """Deterministic reconstruction of the deadlock: fork while another
        thread (standing in for the flusher) holds the store lock.  The child
        must serve namespaces and flush — never block on the inherited lock."""
        ctx = multiprocessing.get_context("fork")
        store = PersistentProfileStore(tmp_path, flush_interval=0)
        queue = ctx.Queue()

        def child_main():
            try:
                with store.activated():
                    counts = Column("child", ["a", "b"]).value_counts()
                store.flush()
                queue.put(("ok", counts == {"a": 1, "b": 1}))
            except Exception as exc:  # noqa: BLE001 - reported to the parent
                queue.put(("error", repr(exc)))

        entered = threading.Event()
        release = threading.Event()

        def holder():
            with store._lock:  # noqa: SLF001
                entered.set()
                release.wait(timeout=30)

        thread = threading.Thread(target=holder)
        thread.start()
        assert entered.wait(timeout=5)
        try:
            process = ctx.Process(target=child_main)
            process.start()
            process.join(timeout=60)
            if process.is_alive():
                process.terminate()
                pytest.fail("forked child deadlocked on the inherited store lock")
            assert process.exitcode == 0
            status, counts_ok = queue.get(timeout=10)
        finally:
            release.set()
            thread.join(timeout=10)
        assert status == "ok"
        assert counts_ok
        store.close()

    def test_fork_under_sustained_flush_load(self, tmp_path):
        """The regression the satellite demands: fork repeatedly while writer
        threads keep the write-behind flusher busy; every child must come up,
        serve a namespace, and flush to a segment of its *own* pid."""
        ctx = multiprocessing.get_context("fork")
        store = PersistentProfileStore(tmp_path, max_columns=64, flush_interval=0.001)
        stop = threading.Event()
        errors: list[Exception] = []

        def hammer(worker_id: int) -> None:
            i = 0
            try:
                while not stop.is_set():
                    column = Column(f"w{worker_id}-{i % 32}", [str(worker_id), str(i), "x"])
                    column.value_counts()
                    column.text_values()
                    i += 1
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        def child_main(queue, round_id: int) -> None:
            try:
                # A round-unique column: a repeated one would be served warm
                # from an earlier child's journal (live sharing!) and leave
                # this child with nothing to flush.
                counts = Column(f"forked-{round_id}", ["p", "q"]).value_counts()
                store.flush()
                queue.put(
                    (
                        "ok",
                        counts == {"p": 1, "q": 1},
                        store._writer_pid == os.getpid(),  # noqa: SLF001
                    )
                )
            except Exception as exc:  # noqa: BLE001
                queue.put(("error", repr(exc), False))

        with store.activated():
            threads = [threading.Thread(target=hammer, args=(w,)) for w in range(3)]
            for thread in threads:
                thread.start()
            try:
                for round_id in range(3):
                    queue = ctx.Queue()
                    process = ctx.Process(target=child_main, args=(queue, round_id))
                    process.start()
                    process.join(timeout=60)
                    if process.is_alive():
                        process.terminate()
                        pytest.fail("forked child deadlocked under flush load")
                    assert process.exitcode == 0
                    status, counts_ok, writer_pinned = queue.get(timeout=10)
                    assert status == "ok", status
                    assert counts_ok
                    assert writer_pinned, "child flushed into a segment it does not own"
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=10)
        assert not errors
        store.close()

    def test_forked_child_restarts_the_flusher_and_parent_tails_it(self, tmp_path):
        """Satellite contract: the child drops the parent's dead flusher and
        cleanly restarts its own (fresh wakeup event, per-pid segment); the
        parent then serves the child's flushed entry live via the journal."""
        ctx = multiprocessing.get_context("fork")
        store = PersistentProfileStore(tmp_path, flush_interval=0.005)
        with store.activated():
            Column("parent", ["1", "2"]).value_counts()  # starts the parent flusher
        assert store._flusher is not None and store._flusher.is_alive()  # noqa: SLF001
        queue = ctx.Queue()
        child_column = Column("child", ["3", "4"])
        child_hash = child_column.content_hash()

        def child_main():
            try:
                flusher_cleared = store._flusher is None  # noqa: SLF001
                wakeup_clear = not store._flusher_wakeup.is_set()  # noqa: SLF001
                with store.activated():
                    Column("child", ["3", "4"]).value_counts()  # reschedules it
                deadline = time.monotonic() + 15
                flushed = False
                while time.monotonic() < deadline:
                    if child_hash in store._index:  # noqa: SLF001
                        flushed = True
                        break
                    time.sleep(0.01)
                restarted = (
                    store._flusher is not None and store._flusher.is_alive()  # noqa: SLF001
                )
                queue.put(("ok", flusher_cleared, wakeup_clear, restarted, flushed))
            except Exception as exc:  # noqa: BLE001
                queue.put(("error", repr(exc), False, False, False))

        process = ctx.Process(target=child_main)
        process.start()
        process.join(timeout=60)
        if process.is_alive():
            process.terminate()
            pytest.fail("forked child hung while restarting the flusher")
        status, flusher_cleared, wakeup_clear, restarted, flushed = queue.get(timeout=10)
        assert status == "ok"
        assert flusher_cleared, "child inherited the parent's dead flusher thread"
        assert wakeup_clear, "child inherited a stale wakeup flag"
        assert restarted, "the child's flusher did not restart"
        assert flushed, "the child's write-behind flush never landed"
        # The parent's own flusher survived the fork.
        assert store._flusher is not None and store._flusher.is_alive()  # noqa: SLF001
        # Live sharing: the parent serves the child's flushed entry warm.
        with store.activated():
            assert Column("child", ["3", "4"]).value_counts() == {"3": 1, "4": 1}
        assert store.shared_hits >= 1, store.stats()
        store.close()

    def test_fork_child_replaces_both_module_locks(self):
        """Regression (repro-lint RL002): the after-fork-in-child handler must
        replace BOTH module-level locks — the fork-state lock the before
        handler holds across the fork, and the install lock another parent
        thread could be holding inside ``install_fork_handlers()`` at fork
        time.  An inherited held lock wedges the child forever."""
        import weakref

        from repro.serving import profile_store as ps

        saved_registry = ps._FORK_REGISTRY  # noqa: SLF001
        state_before, install_before = ps._FORK_STATE_LOCK, ps._INSTALL_LOCK  # noqa: SLF001
        ps._FORK_REGISTRY = weakref.WeakSet()  # noqa: SLF001 - no live stores in the drill
        try:
            ps._fork_before()  # noqa: SLF001 - parent's handler: holds the state lock
            assert ps._FORK_STATE_LOCK.locked()  # noqa: SLF001
            ps._fork_after_in_child()  # noqa: SLF001
            assert ps._FORK_STATE_LOCK is not state_before  # noqa: SLF001
            assert ps._INSTALL_LOCK is not install_before  # noqa: SLF001
            # Both fresh locks are immediately usable in the "child".
            for lock in (ps._FORK_STATE_LOCK, ps._INSTALL_LOCK):  # noqa: SLF001
                acquired = lock.acquire(timeout=1)
                try:
                    assert acquired, "fresh lock arrived held"
                finally:
                    lock.release()
        finally:
            ps._FORK_REGISTRY = saved_registry  # noqa: SLF001
            if state_before.locked():
                state_before.release()

    def test_multiprocess_two_workers_parity_with_persistent_store(
        self, pretrained_typer, shared_tables, tmp_path
    ):
        """The CI fork-safety smoke: bulk annotation under ``multiprocess:2``
        with an active persistent store is bit-identical to serial — on the
        1-CPU container parity, not speedup, is the assertion (canonical
        caveat in docs/SERVING.md)."""
        baseline = _comparable(pretrained_typer.annotate_corpus(_fresh(shared_tables)))
        store = PersistentProfileStore(tmp_path, flush_interval=0.002)
        with store.activated():
            result = pretrained_typer.annotate_corpus(
                _fresh(shared_tables), backend="multiprocess:2"
            )
        store.close()
        assert _comparable(result) == baseline


# ------------------------------------------------------------- locked counters
class TestLockedStatisticsReads:
    def test_stats_len_contains_never_race_clear_or_compaction(self, tmp_path):
        """Satellite contract: ``len``/``in``/``stats()`` take the store lock,
        so concurrent clears, fills, flushes, and evictions can never corrupt
        a statistics snapshot (or crash a reader mid-resize)."""
        store = PersistentProfileStore(tmp_path, max_columns=32, flush_interval=0)
        errors: list[Exception] = []
        stop = threading.Event()

        def reader() -> None:
            probe = "00" * 16
            try:
                while not stop.is_set():
                    snapshot = store.stats()
                    assert snapshot["entries"] >= 0
                    len(store)
                    probe in store
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        def filler() -> None:
            i = 0
            try:
                while not stop.is_set():
                    Column(f"r{i % 64}", [str(i), "x"]).value_counts()
                    i += 1
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        with store.activated():
            threads = [threading.Thread(target=reader) for _ in range(2)]
            threads.append(threading.Thread(target=filler))
            for thread in threads:
                thread.start()
            for _ in range(25):
                store.flush()
                store.clear()
            stop.set()
            for thread in threads:
                thread.join(timeout=10)
        assert not errors
        store.close()

    def test_stats_report_tracked_segment_files_without_globbing(self, tmp_path):
        store = PersistentProfileStore(tmp_path, flush_interval=0)
        with store.activated():
            Column("a", ["1"]).value_counts()
            store.flush()
        assert store.stats()["segment_files"] == len(_segments(tmp_path)) == 1
        store.close()


# ------------------------------------------------------------ service exposure
class TestServiceExposure:
    def test_service_summary_exposes_store_and_shared_hits(
        self, pretrained_typer, fig3_table, tmp_path
    ):
        store = PersistentProfileStore(tmp_path, flush_interval=0)

        async def drive():
            async with AnnotationService(pretrained_typer, max_batch_delay=0.0) as service:
                await service.annotate(fig3_table.copy())
                return service.stats, service.summary()

        with store.activated():
            stats, summary = asyncio.run(drive())
        store.close()
        assert summary["profile_store"]["shared_hits"] == store.shared_hits
        assert summary["profile_store"]["share_across_processes"] is True
        assert stats.store_shared_hits == store.shared_hits
        assert stats.to_dict()["store_shared_hits"] == store.shared_hits
