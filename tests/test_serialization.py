"""Unit tests for table/corpus serialization (CSV and JSON)."""

from __future__ import annotations

import pytest

from repro.core.errors import SerializationError
from repro.core.table import Table
from repro.corpus import GitTablesConfig, GitTablesGenerator, TableCorpus
from repro.corpus.serialization import (
    corpus_from_directory,
    corpus_from_json,
    corpus_to_directory,
    corpus_to_json,
    table_from_csv,
    table_from_json,
    table_to_csv,
    table_to_json,
)


@pytest.fixture()
def table() -> Table:
    return Table.from_columns_dict(
        {"id": ["1", "2"], "city": ["Rome", None]},
        name="places",
        semantic_types={"id": "id", "city": "city"},
    )


class TestCsv:
    def test_round_trip_values(self, table, tmp_path):
        path = table_to_csv(table, tmp_path / "places.csv")
        restored = table_from_csv(path)
        assert restored.column_names == ["id", "city"]
        assert restored.num_rows == 2
        assert restored.column("city").values[0] == "Rome"
        # CSV cannot carry annotations...
        assert restored.column("id").semantic_type is None

    def test_semantic_types_reattached(self, table, tmp_path):
        path = table_to_csv(table, tmp_path / "places.csv")
        restored = table_from_csv(path, semantic_types={"city": "city"})
        assert restored.column("city").semantic_type == "city"

    def test_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            table_from_csv(tmp_path / "missing.csv")

    def test_empty_file(self, tmp_path):
        empty = tmp_path / "empty.csv"
        empty.write_text("")
        with pytest.raises(SerializationError):
            table_from_csv(empty)

    def test_name_defaults_to_stem(self, table, tmp_path):
        path = table_to_csv(table, tmp_path / "export.csv")
        assert table_from_csv(path).name == "export"


class TestJson:
    def test_table_round_trip(self, table, tmp_path):
        path = table_to_json(table, tmp_path / "places.json")
        restored = table_from_json(path)
        assert restored.name == "places"
        assert restored.column("city").semantic_type == "city"
        assert restored.column("city").values == ["Rome", None]

    def test_invalid_json(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not valid json")
        with pytest.raises(SerializationError):
            table_from_json(bad)

    def test_missing_json(self, tmp_path):
        with pytest.raises(SerializationError):
            table_from_json(tmp_path / "missing.json")

    def test_corpus_round_trip(self, tmp_path):
        corpus = GitTablesGenerator(GitTablesConfig(num_tables=3, seed=2)).generate_corpus()
        path = corpus_to_json(corpus, tmp_path / "corpus.json")
        restored = corpus_from_json(path)
        assert len(restored) == 3
        assert restored.label_distribution() == corpus.label_distribution()

    def test_corpus_directory_round_trip(self, table, tmp_path):
        corpus = TableCorpus([table, table.copy()], name="two")
        paths = corpus_to_directory(corpus, tmp_path / "tables")
        assert len(paths) == 2
        restored = corpus_from_directory(tmp_path / "tables", name="two")
        assert len(restored) == 2

    def test_corpus_directory_missing(self, tmp_path):
        with pytest.raises(SerializationError):
            corpus_from_directory(tmp_path / "nope")
