"""The CI helper scripts are gates — so they get tests like everything else.

Covers ``scripts/check_doc_links.py`` (links, anchors, and the embedded
knob table), ``scripts/bench_summary.py`` (rendering and the ``--check``
staleness gate), and ``scripts/scan_leaks.py`` (log markers, the shm scan,
and the missing-log usage error).  Each script keeps its repo paths in
module-level constants precisely so these tests can point it at a tmp tree.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro.analysis.knobs import TABLE_BEGIN, TABLE_END, render_knob_table

SCRIPTS_DIR = Path(__file__).resolve().parent.parent / "scripts"


def _load_script(name: str):
    """Import ``scripts/<name>.py`` as a throwaway module instance."""
    spec = importlib.util.spec_from_file_location(f"_script_{name}", SCRIPTS_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


# ---------------------------------------------------------------- doc links
@pytest.fixture()
def doc_repo(tmp_path, monkeypatch):
    """A tiny doc tree + the check_doc_links module pointed at it."""
    mod = _load_script("check_doc_links")
    (tmp_path / "docs").mkdir()
    (tmp_path / "GUIDE.md").write_text(
        "# Guide\n\n## Setup steps\n\ntext\n", encoding="utf-8"
    )
    monkeypatch.setattr(mod, "REPO_ROOT", tmp_path)
    monkeypatch.setattr(mod, "DOC_FILES", ["README.md"])
    monkeypatch.setattr(mod, "KNOB_TABLE_FILES", [])
    return mod, tmp_path


def test_doc_links_happy_path(doc_repo, capsys):
    mod, root = doc_repo
    (root / "README.md").write_text(
        "# Top\n\n## Usage notes\n\n"
        "[guide](GUIDE.md) and [setup](GUIDE.md#setup-steps) "
        "and [here](#usage-notes) and [ext](https://example.com/x#y)\n",
        encoding="utf-8",
    )
    assert mod.main() == 0
    assert "resolve" in capsys.readouterr().out


def test_doc_links_broken_anchor_and_file(doc_repo, capsys):
    mod, root = doc_repo
    (root / "README.md").write_text(
        "[bad anchor](GUIDE.md#no-such-heading)\n[bad file](MISSING.md)\n",
        encoding="utf-8",
    )
    assert mod.main() == 1
    out = capsys.readouterr().out
    assert "broken anchor -> GUIDE.md#no-such-heading" in out
    assert "broken link -> MISSING.md" in out


def test_doc_links_ignores_fenced_examples(doc_repo):
    mod, root = doc_repo
    (root / "README.md").write_text(
        "ok\n\n```\n[example](NOT_A_REAL_FILE.md)\n```\n", encoding="utf-8"
    )
    assert mod.main() == 0


def test_doc_links_knob_table_current(doc_repo):
    mod, root = doc_repo
    (root / "README.md").write_text("no links\n", encoding="utf-8")
    serving = root / "docs" / "SERVING.md"
    serving.write_text(
        f"# Ops\n\n{TABLE_BEGIN}\n{render_knob_table()}\n{TABLE_END}\n",
        encoding="utf-8",
    )
    mod.KNOB_TABLE_FILES = ["docs/SERVING.md"]
    assert mod.main() == 0


def test_doc_links_knob_table_drift_fails(doc_repo, capsys):
    """A hand-edited default in the embedded table fails the docs gate."""
    mod, root = doc_repo
    (root / "README.md").write_text("no links\n", encoding="utf-8")
    doctored = render_knob_table().replace("`2.0`", "`9.9`", 1)
    assert doctored != render_knob_table()
    serving = root / "docs" / "SERVING.md"
    serving.write_text(
        f"# Ops\n\n{TABLE_BEGIN}\n{doctored}\n{TABLE_END}\n", encoding="utf-8"
    )
    mod.KNOB_TABLE_FILES = ["docs/SERVING.md"]
    assert mod.main() == 1
    out = capsys.readouterr().out
    assert "knob table" in out


def test_doc_links_knob_table_removed_row_fails(doc_repo, capsys):
    """Acceptance bar: deleting one REPRO_* row from the table fails the gate."""
    mod, root = doc_repo
    (root / "README.md").write_text("no links\n", encoding="utf-8")
    rows = render_knob_table().splitlines()
    removed = [line for line in rows if "REPRO_NET_PEERS" not in line]
    assert len(removed) == len(rows) - 1
    (root / "docs" / "SERVING.md").write_text(
        f"# Ops\n\n{TABLE_BEGIN}\n" + "\n".join(removed) + f"\n{TABLE_END}\n",
        encoding="utf-8",
    )
    mod.KNOB_TABLE_FILES = ["docs/SERVING.md"]
    assert mod.main() == 1
    out = capsys.readouterr().out
    assert "REPRO_NET_PEERS" in out


def test_doc_links_knob_table_missing_markers_fails(doc_repo, capsys):
    mod, root = doc_repo
    (root / "README.md").write_text("no links\n", encoding="utf-8")
    (root / "docs" / "SERVING.md").write_text("# Ops\n\nno table\n", encoding="utf-8")
    mod.KNOB_TABLE_FILES = ["docs/SERVING.md"]
    assert mod.main() == 1
    assert "markers missing" in capsys.readouterr().out


# ------------------------------------------------------------- bench summary
@pytest.fixture()
def bench_repo(tmp_path, monkeypatch):
    """A tmp repo root with one known artifact + the bench_summary module."""
    mod = _load_script("bench_summary")
    (tmp_path / "docs").mkdir()
    artifact = {
        "experiment": "E12_store_persistence",
        "num_tables": 40,
        "restart_hit_rate": 1.0,
        "restart_disk_hits": 64,
        "flushed_entries": 64,
    }
    (tmp_path / "BENCH_store_persistence.json").write_text(
        json.dumps(artifact), encoding="utf-8"
    )
    monkeypatch.setattr(mod, "REPO_ROOT", tmp_path)
    monkeypatch.setattr(mod, "OUTPUT_PATH", tmp_path / "docs" / "BENCHMARKS.md")
    return mod, tmp_path


def test_bench_summary_writes_table(bench_repo, capsys):
    mod, root = bench_repo
    assert mod.main([]) == 0
    text = (root / "docs" / "BENCHMARKS.md").read_text(encoding="utf-8")
    assert "| `E12_store_persistence` | PR 3/4 |" in text
    assert "restart hit rate 100%" in text
    assert "40 tables" in text


def test_bench_summary_check_passes_when_current(bench_repo):
    mod, _ = bench_repo
    assert mod.main([]) == 0
    assert mod.main(["--check"]) == 0


def test_bench_summary_check_fails_when_stale(bench_repo, capsys):
    """An artifact changing after the doc was written trips ``--check``."""
    mod, root = bench_repo
    assert mod.main([]) == 0
    artifact = json.loads(
        (root / "BENCH_store_persistence.json").read_text(encoding="utf-8")
    )
    artifact["restart_disk_hits"] = 63
    (root / "BENCH_store_persistence.json").write_text(
        json.dumps(artifact), encoding="utf-8"
    )
    assert mod.main(["--check"]) == 1
    assert "stale" in capsys.readouterr().err


def test_bench_summary_unknown_experiment_still_renders(bench_repo):
    """Future artifacts surface their scalar gates without code changes."""
    mod, root = bench_repo
    (root / "BENCH_future_thing.json").write_text(
        json.dumps({"experiment": "E99_future_thing", "speedup": 3.5, "ok": True}),
        encoding="utf-8",
    )
    assert mod.main([]) == 0
    text = (root / "docs" / "BENCHMARKS.md").read_text(encoding="utf-8")
    assert "| `E99_future_thing` | — | (new experiment) |" in text
    assert "speedup=3.5" in text


# ---------------------------------------------------------------- leak scan
@pytest.fixture()
def scan_mod():
    return _load_script("scan_leaks")


def test_scan_leaks_clean_log(scan_mod, tmp_path, capsys):
    log = tmp_path / "run.log"
    log.write_text("all 12 tests passed\n", encoding="utf-8")
    assert scan_mod.main(["--log", str(log), "--no-shm"]) == 0
    assert "no leaks" in capsys.readouterr().out


def test_scan_leaks_marker_hit(scan_mod, tmp_path, capsys):
    log = tmp_path / "run.log"
    log.write_text("ok\nLEAKED SEGMENT sigshard-12-ab\n", encoding="utf-8")
    assert scan_mod.main(["--log", str(log), "--no-shm"]) == 1
    out = capsys.readouterr().out
    assert "::error::" in out and "LEAKED SEGMENT" in out


def test_scan_leaks_regex_hit(scan_mod, tmp_path):
    log = tmp_path / "run.log"
    log.write_text("Task was destroyed but it is pending!\n", encoding="utf-8")
    argv = ["--log", str(log), "--no-shm", "--regex", "Task was destroyed"]
    assert scan_mod.main(argv) == 1


def test_scan_leaks_shm_scan(scan_mod, tmp_path, capsys):
    shm = tmp_path / "shm"
    shm.mkdir()
    (shm / "sigres-7-beef").touch()
    (shm / "unrelated").touch()
    assert scan_mod.main(["--shm-dir", str(shm)]) == 1
    out = capsys.readouterr().out
    assert "sigres-7-beef" in out and "unrelated" not in out


def test_scan_leaks_missing_log_is_usage_error(scan_mod, tmp_path):
    """A vanished log must fail loudly (exit 2), not scan nothing and pass."""
    assert scan_mod.main(["--log", str(tmp_path / "gone.log"), "--no-shm"]) == 2


def test_scan_leaks_custom_markers_replace_defaults(scan_mod, tmp_path):
    log = tmp_path / "run.log"
    log.write_text("UNEXPECTED KERNEL FALLBACK non-ascii\n", encoding="utf-8")
    argv = ["--log", str(log), "--no-shm", "--marker", "UNEXPECTED KERNEL FALLBACK"]
    assert scan_mod.main(argv) == 1
    # ...and with only the default markers this line is not a leak.
    assert scan_mod.main(["--log", str(log), "--no-shm"]) == 0
