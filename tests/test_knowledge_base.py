"""Unit tests for the offline knowledge base."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.core.table import Column
from repro.lookup.knowledge_base import KnowledgeBase


class TestConstruction:
    def test_add_entities_counts(self):
        kb = KnowledgeBase()
        added = kb.add_entities("city", ["Rome", "Paris", "Rome"])
        assert added == 2
        assert len(kb) == 2

    def test_empty_type_name_rejected(self):
        with pytest.raises(ConfigurationError):
            KnowledgeBase().add_entities("", ["x"])

    def test_default_knowledge_base_has_entities(self):
        kb = KnowledgeBase.default()
        assert len(kb) > 500
        assert "city" in kb.known_types
        assert "country" in kb.known_types
        assert kb.entity_count("city") > 10


class TestLookups:
    @pytest.fixture()
    def kb(self) -> KnowledgeBase:
        kb = KnowledgeBase()
        kb.add_entities("city", ["Rome", "Paris", "Amsterdam"])
        kb.add_entities("country", ["France", "Italy"])
        kb.add_entities("name", ["Paris"])  # ambiguous entity
        return kb

    def test_case_insensitive_by_default(self, kb):
        assert kb.types_for_value("rome") == {"city"}
        assert "PARIS" in kb

    def test_ambiguous_values_return_multiple_types(self, kb):
        assert kb.types_for_value("Paris") == {"city", "name"}

    def test_unknown_value(self, kb):
        assert kb.types_for_value("Atlantis") == set()

    def test_case_sensitive_mode(self):
        kb = KnowledgeBase(case_sensitive=True)
        kb.add_entities("city", ["Rome"])
        assert kb.types_for_value("rome") == set()
        assert kb.types_for_value("Rome") == {"city"}

    def test_lookup_column_fractions(self, kb):
        column = Column("place", ["Rome", "Paris", "Gotham", "Amsterdam"])
        scores = kb.lookup_column(column)
        assert scores["city"] == pytest.approx(0.75)
        assert scores.get("country") is None

    def test_lookup_column_empty(self, kb):
        assert kb.lookup_column(Column("x", [None, ""])) == {}

    def test_lookup_column_sampling_is_deterministic(self, kb):
        column = Column("place", ["Rome", "Paris"] * 100)
        assert kb.lookup_column(column, sample_size=10) == kb.lookup_column(column, sample_size=10)


class TestSerialization:
    def test_round_trip(self):
        kb = KnowledgeBase()
        kb.add_entities("city", ["Rome", "Paris"])
        kb.add_entities("country", ["Italy"])
        restored = KnowledgeBase.from_dict(kb.to_dict())
        assert restored.types_for_value("rome") == {"city"}
        assert set(restored.known_types) == {"city", "country"}
