"""Unit tests for featurization, dataset assembly, the learned classifier,
and OOD detection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ConfigurationError, ModelNotTrainedError
from repro.core.ontology import UNKNOWN_TYPE
from repro.core.table import Column, Table
from repro.corpus import build_ood_corpus
from repro.embedding_model import (
    ColumnFeaturizer,
    FeaturizerConfig,
    LabelVocabulary,
    OODDetector,
    TableEmbeddingClassifier,
    TableEmbeddingStep,
    auroc,
    build_dataset,
    energy_score,
    entropy_score,
    max_softmax_score,
)


class TestColumnFeaturizer:
    def test_fixed_dimension(self):
        featurizer = ColumnFeaturizer()
        column = Column("salary", ["100", "200", "300"])
        table = Table([column, Column("city", ["Rome", "Pisa", "Bari"])])
        vector_alone = featurizer.extract(column)
        vector_in_table = featurizer.extract(column, table)
        assert vector_alone.shape == (featurizer.dim,)
        assert vector_in_table.shape == (featurizer.dim,)

    def test_feature_groups_sum_to_dim(self):
        featurizer = ColumnFeaturizer()
        assert sum(featurizer.feature_groups.values()) == featurizer.dim

    def test_context_changes_features(self):
        featurizer = ColumnFeaturizer()
        column = Column("value", ["1", "2", "3"])
        numeric_table = Table([column, Column("other", ["4", "5", "6"])])
        text_table = Table([column, Column("other", ["a", "b", "c"])])
        assert not np.allclose(
            featurizer.extract(column, numeric_table), featurizer.extract(column, text_table)
        )

    def test_header_exclusion_changes_dim(self):
        with_header = ColumnFeaturizer(config=FeaturizerConfig(include_header=True))
        without_header = ColumnFeaturizer(config=FeaturizerConfig(include_header=False))
        assert with_header.dim > without_header.dim

    def test_deterministic(self):
        featurizer = ColumnFeaturizer()
        column = Column("email", ["a@x.com", "b@y.com"])
        np.testing.assert_allclose(featurizer.extract(column), featurizer.extract(column))

    def test_different_types_get_different_features(self):
        featurizer = ColumnFeaturizer()
        emails = Column("a", ["a@x.com", "b@y.org", "c@z.io"])
        prices = Column("a", ["10.99", "5.49", "99.00"])
        assert not np.allclose(featurizer.extract(emails), featurizer.extract(prices))

    def test_empty_column_is_finite(self):
        featurizer = ColumnFeaturizer()
        vector = featurizer.extract(Column("empty", [None, "", None]))
        assert np.all(np.isfinite(vector))

    def test_extract_many_shape(self):
        featurizer = ColumnFeaturizer()
        rows = [(Column("a", ["1"]), None), (Column("b", ["x"]), None)]
        assert featurizer.extract_many(rows).shape == (2, featurizer.dim)
        assert featurizer.extract_many([]).shape == (0, featurizer.dim)


class TestLabelVocabulary:
    def test_from_labels_sorted_and_unknown_appended(self):
        vocabulary = LabelVocabulary.from_labels(["b", "a", "b"])
        assert vocabulary.types[:2] == ["a", "b"]
        assert vocabulary.types[-1] == UNKNOWN_TYPE
        assert vocabulary.unknown_index == 2

    def test_index_round_trip(self):
        vocabulary = LabelVocabulary.from_labels(["x", "y"], include_unknown=False)
        for type_name in vocabulary:
            assert vocabulary.type_at(vocabulary.index_of(type_name)) == type_name

    def test_unknown_label_rejected(self):
        vocabulary = LabelVocabulary.from_labels(["x"], include_unknown=False)
        with pytest.raises(ConfigurationError):
            vocabulary.index_of("zzz")
        with pytest.raises(ConfigurationError):
            vocabulary.type_at(99)

    def test_serialization(self):
        vocabulary = LabelVocabulary.from_labels(["x", "y"])
        restored = LabelVocabulary.from_dict(vocabulary.to_dict())
        assert restored.types == vocabulary.types


class TestBuildDataset:
    def test_dataset_covers_labeled_columns(self, small_corpus):
        featurizer = ColumnFeaturizer()
        dataset = build_dataset(small_corpus, featurizer)
        assert len(dataset) == len(small_corpus.labeled_columns())
        assert dataset.features.shape == (len(dataset), featurizer.dim)
        assert set(np.unique(dataset.labels)) <= set(range(len(dataset.vocabulary)))

    def test_background_corpus_becomes_unknown(self, small_corpus, background_corpus):
        featurizer = ColumnFeaturizer()
        dataset = build_dataset(small_corpus, featurizer, background_corpus=background_corpus)
        counts = dataset.class_counts()
        assert counts.get(UNKNOWN_TYPE, 0) == background_corpus.num_columns

    def test_extra_examples_added(self, small_corpus):
        featurizer = ColumnFeaturizer()
        extra = [(Column("income", ["1", "2"]), None, "salary")]
        baseline = build_dataset(small_corpus, featurizer)
        extended = build_dataset(small_corpus, featurizer, extra_examples=extra)
        assert len(extended) == len(baseline) + 1

    def test_merged_with_requires_same_vocabulary(self, small_corpus):
        featurizer = ColumnFeaturizer()
        dataset = build_dataset(small_corpus, featurizer)
        merged = dataset.merged_with(dataset)
        assert len(merged) == 2 * len(dataset)
        other = build_dataset(small_corpus, featurizer, vocabulary=LabelVocabulary(["only"]))
        with pytest.raises(ConfigurationError):
            dataset.merged_with(other)


class TestTableEmbeddingClassifier:
    def test_training_report(self, trained_classifier, small_corpus):
        report = trained_classifier.last_fit_report
        assert report is not None
        assert report.num_examples >= len(small_corpus.labeled_columns())
        assert report.final_train_accuracy > 0.5

    def test_predict_proba_sums_to_one(self, trained_classifier):
        column = Column("salary", ["52000", "61000", "70500"])
        probabilities = trained_classifier.predict_proba(column)
        assert sum(probabilities.values()) == pytest.approx(1.0, abs=1e-6)

    def test_predict_column_ranked(self, trained_classifier):
        column = Column("email", ["a@x.com", "b@y.org", "c@corp.com"])
        scores = trained_classifier.predict_column(column, top_k=5)
        assert len(scores) == 5
        assert scores[0].confidence >= scores[-1].confidence

    def test_accuracy_on_held_out_corpus(self, trained_classifier, eval_corpus):
        correct = total = 0
        for table in eval_corpus:
            for column in table.columns:
                if column.semantic_type is None:
                    continue
                total += 1
                if trained_classifier.predict_type(column, table) == column.semantic_type:
                    correct += 1
        assert correct / total > 0.45, f"classifier accuracy too low: {correct}/{total}"

    def test_unknown_class_present(self, trained_classifier):
        assert UNKNOWN_TYPE in trained_classifier.known_types()

    def test_use_before_fit_raises(self):
        classifier = TableEmbeddingClassifier()
        with pytest.raises(ModelNotTrainedError):
            classifier.predict_type(Column("x", ["1"]))

    def test_finetune_shifts_predictions(self, small_corpus, background_corpus):
        from repro.nn import MLPConfig

        classifier = TableEmbeddingClassifier(mlp_config=MLPConfig(max_epochs=8, hidden_sizes=(64,), seed=2))
        classifier.fit(small_corpus, background_corpus=background_corpus)
        column = Column("mystery", ["50500", "61000", "72000", "55000"])
        examples = [(column, None, "salary")] * 5
        before = classifier.predict_proba(column).get("salary", 0.0)
        classifier.finetune(examples, epochs=8)
        after = classifier.predict_proba(column).get("salary", 0.0)
        assert after >= before

    def test_finetune_before_fit_raises(self):
        classifier = TableEmbeddingClassifier()
        with pytest.raises(ModelNotTrainedError):
            classifier.finetune([(Column("x", ["1"]), None, "salary")])

    def test_snapshot_restore_weights(self, trained_classifier):
        column = Column("city", ["Rome", "Bari"])
        reference = trained_classifier.predict_proba(column)
        weights = trained_classifier.snapshot_weights()
        trained_classifier.restore_weights(weights)
        assert trained_classifier.predict_proba(column) == pytest.approx(reference)


class TestTableEmbeddingStep:
    def test_requires_trained_classifier(self):
        with pytest.raises(ModelNotTrainedError):
            TableEmbeddingStep(TableEmbeddingClassifier())

    def test_predicts_all_requested_columns(self, trained_classifier, eval_corpus):
        step = TableEmbeddingStep(trained_classifier, top_k=3)
        table = eval_corpus[0]
        results = step.predict_columns(table, [0, 1])
        assert set(results) == {0, 1}
        assert all(len(scores) <= 3 for scores in results.values())


class TestOODScores:
    def test_max_softmax(self):
        assert max_softmax_score([0.7, 0.2, 0.1]) == 0.7
        assert max_softmax_score([]) == 0.0

    def test_entropy_bounds(self):
        assert entropy_score([1.0, 0.0]) == 0.0
        assert entropy_score([0.5, 0.5]) == pytest.approx(1.0)
        assert entropy_score([1.0]) == 0.0

    def test_energy_monotonic_in_logit_magnitude(self):
        confident = energy_score([10.0, 0.0, 0.0])
        unsure = energy_score([0.1, 0.0, 0.0])
        assert confident < unsure  # higher energy = more OOD

    def test_energy_invalid_temperature(self):
        with pytest.raises(ConfigurationError):
            energy_score([1.0], temperature=0.0)

    def test_auroc_separable(self):
        assert auroc([0.1, 0.2, 0.3], [0.8, 0.9]) == 1.0
        assert auroc([0.8, 0.9], [0.1, 0.2]) == 0.0
        assert auroc([], [0.5]) == 0.5


class TestOODDetector:
    def test_invalid_method_rejected(self, trained_classifier):
        with pytest.raises(ConfigurationError):
            OODDetector(trained_classifier, method="magic")

    def test_calibration_and_decisions(self, trained_classifier, eval_corpus):
        detector = OODDetector(trained_classifier, method="max_softmax", accept_fraction=0.9)
        in_distribution = [
            (entry.column, entry.table) for entry in eval_corpus.labeled_columns()[:40]
        ]
        threshold = detector.calibrate(in_distribution)
        assert detector.threshold == threshold
        accepted = sum(
            not detector.is_out_of_distribution(column, table) for column, table in in_distribution
        )
        # Roughly the accept fraction of in-distribution columns stays accepted.
        assert accepted / len(in_distribution) >= 0.6

    def test_ood_columns_flagged_more_often_than_in_distribution(self, trained_classifier, eval_corpus):
        detector = OODDetector(trained_classifier, method="max_softmax", accept_fraction=0.9)
        in_distribution = [(e.column, e.table) for e in eval_corpus.labeled_columns()[:40]]
        detector.calibrate(in_distribution)
        ood_corpus = build_ood_corpus(num_tables=6, seed=123)
        ood_columns = [
            (entry.column, entry.table)
            for entry in ood_corpus.columns()
            if str(entry.label).startswith("ood:")
        ]
        ood_flag_rate = sum(
            detector.is_out_of_distribution(column, table) for column, table in ood_columns
        ) / len(ood_columns)
        in_flag_rate = sum(
            detector.is_out_of_distribution(column, table) for column, table in in_distribution
        ) / len(in_distribution)
        assert ood_flag_rate > in_flag_rate

    def test_calibration_requires_columns(self, trained_classifier):
        detector = OODDetector(trained_classifier)
        with pytest.raises(ConfigurationError):
            detector.calibrate([])
