"""Unit tests for the query-semantics extension (Section 5 future work)."""

from __future__ import annotations

import pytest

from repro.core.prediction import ColumnPrediction, TablePrediction, TypeScore
from repro.queries import ColumnUsage, QueryAwareReranker, QueryLog, analyze_queries

SALES_QUERIES = [
    "SELECT region, SUM(amount) FROM orders GROUP BY region ORDER BY SUM(amount) DESC",
    "SELECT COUNT(DISTINCT customer_id) FROM orders WHERE order_date >= '2024-01-01'",
    "SELECT o.customer_id, c.name FROM orders o JOIN customers c ON o.customer_id = c.id",
    "SELECT AVG(amount) FROM orders WHERE region = 'EMEA'",
    "SELECT order_date, amount FROM orders WHERE order_date BETWEEN '2024-01-01' AND '2024-03-31'",
]


class TestQueryLog:
    def test_blank_queries_ignored(self):
        log = QueryLog(["", "   ", "SELECT 1"])
        log.add("")
        log.extend(["SELECT 2", None if False else "  "])
        assert len(log) == 2

    def test_analyze_restricted_to_columns(self):
        log = QueryLog(SALES_QUERIES)
        usages = log.analyze(column_names=["amount", "region", "customer_id", "order_date"])
        assert set(usages) <= {"amount", "region", "customer_id", "order_date"}


class TestAnalyzeQueries:
    @pytest.fixture(scope="class")
    def usages(self):
        return analyze_queries(SALES_QUERIES)

    def test_numeric_aggregation_detected(self, usages):
        assert usages["amount"].numeric_aggregations >= 2
        assert usages["amount"].is_measure_like

    def test_group_by_detected(self, usages):
        assert usages["region"].group_by_uses >= 1
        assert usages["region"].is_dimension_like

    def test_join_key_and_distinct_count_detected(self, usages):
        assert usages["customer_id"].join_key_uses >= 1
        assert usages["customer_id"].distinct_counts >= 1
        assert usages["customer_id"].is_identifier_like

    def test_date_comparison_detected(self, usages):
        assert usages["order_date"].date_comparisons >= 1
        assert usages["order_date"].is_temporal_like

    def test_equality_filter_detected(self, usages):
        assert usages["region"].equality_filters >= 1

    def test_mentions_counted_per_query(self, usages):
        assert usages["amount"].mentions >= 2

    def test_qualified_names_resolved_to_bare_columns(self):
        usages = analyze_queries(["SELECT SUM(t.revenue) FROM t GROUP BY t.country"])
        assert "revenue" in usages and "country" in usages

    def test_like_patterns_recorded(self):
        usages = analyze_queries(["SELECT * FROM users WHERE email LIKE '%@acme.com'"])
        assert usages["email"].like_patterns == ["%@acme.com"]

    def test_no_signal_queries(self):
        assert analyze_queries(["SELECT 1", "VACUUM"]) == {}


class TestQueryAwareReranker:
    def _scores(self):
        return [TypeScore(0.55, "id"), TypeScore(0.50, "salary")]

    def test_measure_usage_prefers_numeric_type(self, ontology):
        reranker = QueryAwareReranker(ontology)
        usage = ColumnUsage(column_name="amount", mentions=3, numeric_aggregations=3)
        reranked = reranker.rerank_scores(self._scores(), usage)
        # "salary" (numeric kind) gets boosted past "id" (kind any, no boost).
        assert reranked[0].type_name == "salary"

    def test_identifier_usage_keeps_id_on_top(self, ontology):
        reranker = QueryAwareReranker(ontology)
        usage = ColumnUsage(column_name="ref", mentions=2, join_key_uses=2, distinct_counts=1)
        reranked = reranker.rerank_scores(self._scores(), usage)
        assert reranked[0].type_name == "id"

    def test_no_usage_is_a_noop(self, ontology):
        reranker = QueryAwareReranker(ontology)
        assert reranker.rerank_scores(self._scores(), None) == self._scores()

    def test_confidences_stay_bounded(self, ontology):
        reranker = QueryAwareReranker(ontology)
        usage = ColumnUsage(column_name="x", mentions=5, numeric_aggregations=5, date_comparisons=5)
        reranked = reranker.rerank_scores([TypeScore(0.99, "salary")], usage)
        assert all(0.0 <= score.confidence <= 1.0 for score in reranked)

    def test_rerank_prediction_marks_source(self, ontology):
        reranker = QueryAwareReranker(ontology)
        prediction = TablePrediction(
            table_name="orders",
            columns=[
                ColumnPrediction(0, "amount", [TypeScore(0.5, "id"), TypeScore(0.45, "price")]),
                ColumnPrediction(1, "untouched", [TypeScore(0.5, "city")]),
            ],
        )
        usages = {"amount": ColumnUsage(column_name="amount", mentions=2, numeric_aggregations=2)}
        reranked = reranker.rerank_prediction(prediction, usages)
        assert reranked.prediction_for("amount").predicted_type == "price"
        assert reranked.prediction_for("amount").source_step.endswith("+queries")
        assert reranked.prediction_for("untouched").predicted_type == "city"

    def test_unknown_types_untouched(self, ontology):
        reranker = QueryAwareReranker(ontology)
        usage = ColumnUsage(column_name="x", mentions=2, numeric_aggregations=2)
        scores = [TypeScore(0.5, "not_in_ontology"), TypeScore(0.4, "salary")]
        reranked = reranker.rerank_scores(scores, usage)
        by_name = {score.type_name: score.confidence for score in reranked}
        assert by_name["not_in_ontology"] == 0.5
