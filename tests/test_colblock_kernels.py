"""Parity tests for the block-native columnar kernels (`repro.core.colblock`).

The kernels re-implement the profiling/featurization hot path as vectorized
numpy passes over the typed block layout.  Their contract is byte-exactness:
every statistic a kernel produces must equal — ``repr``-equal, so ``-0.0``,
``nan``-handling, and int-vs-float differences all count — what the seed
per-value Python code produces, with anything outside the kernels'
vocabulary (non-ASCII text, bigints, mixed tags) falling back to that code
path cell-for-cell.  These tests pin the contract field by field; the E15
benchmark pins it end-to-end over full cascade predictions.
"""

from __future__ import annotations

import math
import pickle
import random
import string

import pytest

from repro.core import colblock
from repro.core.colblock import kernel_character_template, view_from_values
from repro.core.datatypes import parse_number
from repro.core.table import Column, Table
from repro.profiler.statistics import ColumnStatistics, character_template, profile_column
from repro.serving import ColumnBlockCodec


@pytest.fixture(autouse=True)
def _kernels_enabled():
    """Every test starts with kernels on and pristine counters."""
    previous = colblock.set_kernels_enabled(True)
    colblock.reset_kernel_stats()
    yield
    colblock.set_kernels_enabled(previous)


def _python_profile(values, name="col"):
    """The seed per-value profile of *values*, computed with kernels off."""
    colblock.set_kernels_enabled(False)
    try:
        return profile_column(Column(name, list(values)))
    finally:
        colblock.set_kernels_enabled(True)


def _kernel_profile(values, name="col"):
    """The same profile through ``Table.to_block()`` with kernels on."""
    table = Table([Column(name, list(values))], name="t").to_block()
    return profile_column(table.columns[0])


def _assert_profiles_identical(reference: ColumnStatistics, candidate: ColumnStatistics):
    for field_name in ColumnStatistics.__dataclass_fields__:
        expected = getattr(reference, field_name)
        got = getattr(candidate, field_name)
        # repr-equality distinguishes -0.0 from 0.0 and 1 from 1.0.
        assert repr(got) == repr(expected), (
            f"{field_name}: kernel {got!r} != python {expected!r}"
        )


# ----------------------------------------------------------------- templates


def test_character_template_known_cases():
    for value, expected in [
        ("AB-123", "AA-999"),
        ("AB-1234", "AA-999+"),
        ("", ""),
        ("aaaa", "aaa+"),
        ("aaa", "aaa"),
        ("12.5%", "99.9%"),
        ("a1a1a1", "a9a9a9"),
    ]:
        assert character_template(value) == expected
        assert kernel_character_template(value) == expected


def test_character_template_parity_random_ascii():
    rng = random.Random(1234)
    alphabet = string.ascii_letters + string.digits + " .-_/:%$#@!,"
    for _ in range(500):
        length = rng.randint(0, 40)
        value = "".join(rng.choice(alphabet) for _ in range(length))
        assert kernel_character_template(value) == character_template(value)


def test_character_template_parity_digit_runs():
    rng = random.Random(99)
    for _ in range(200):
        # Long homogeneous runs straddling the max_run collapse boundary.
        parts = []
        for _ in range(rng.randint(1, 6)):
            char = rng.choice("aZ9-")
            parts.append(char * rng.randint(1, 8))
        value = "".join(parts)
        for max_run in (1, 2, 3, 5):
            assert kernel_character_template(value, max_run) == character_template(
                value, max_run
            )


def test_character_template_unicode_falls_back_to_none():
    # The byte-level kernel refuses multi-byte text instead of guessing:
    # Python classifies characters, the kernel classifies bytes, and the two
    # disagree on anything beyond ASCII.
    rng = random.Random(7)
    pool = "Bogotá São 東京 Zürich naïve Ω₂ 😀"
    for _ in range(100):
        value = "".join(rng.choice(pool) for _ in range(rng.randint(1, 12)))
        if value.isascii():
            assert kernel_character_template(value) == character_template(value)
        else:
            assert kernel_character_template(value) is None
            # ... and the real template still works on the Python side.
            character_template(value)


# ------------------------------------------------------------ profile parity

PROFILE_CASES = {
    "ascii_text": ["alpha", "beta", "beta", "Gamma-9", None, "", "  padded  "],
    "numeric_strings": ["1", "2.5", "-3", "+4.0", "1e3", "-0", "0.0", None],
    "formatted_numbers": [
        "$1,234.56", "$ 99", "12.5%", "(5)", "$(2.5)", "1.5k", "2M", "3B",
        "1,2,3", "12 %", "12%%", "1e5%", "5k2", "$", "%", "-", "--",
    ],
    "int_cells": [1, 2, 3, 2, None, 0, -7],
    "float_cells": [1.5, -0.0, 2.25, None, 1.5],
    "float_with_nan": [1.0, float("nan"), 2.0, None],
    "bool_cells": [True, False, True, None],
    "mixed_scalars": [1, 2.5, True, None, 0],
    "bigint_cells": [2**63, 1, 2, None],
    "negative_bigint": [-(2**70), 5],
    "all_none": [None, None, None],
    "empty": [],
    "null_tokens": ["N/A", "null", "-", "", None, "n/a", "NONE"],
    "near_numeric_threshold": ["1", "2", "x", "y", None, "3"],
    "long_digits": ["9" * 18, "9" * 19, "123456789012345678"],
    "whitespace_edges": ["  a  ", "\tb\t", " 1 ", "\x1c2\x1c", "   "],
    # "2e400" would parse to inf and crash the *seed* pstdev, so the largest
    # representable magnitudes stand in for the scientific-notation edge.
    "scientific": ["1e308", "1e-308", "-1.5E+10", "2.5e-5"],
    "single_value": ["only"],
    "mixed_text_and_int": ["a", 1, "b", None],
}


@pytest.mark.parametrize("case", sorted(PROFILE_CASES))
def test_profile_parity_per_field(case):
    values = PROFILE_CASES[case]
    _assert_profiles_identical(_python_profile(values), _kernel_profile(values))


def test_derived_value_parity_across_column_api():
    rng = random.Random(2024)
    pool = ["x", "yy", "$5", "1,000", "", None, "12.5%", "N/A", 7, 2.5, True,
            "code-9", "a b", "(3)"]
    for trial in range(25):
        values = [rng.choice(pool) for _ in range(rng.randint(1, 60))]
        colblock.set_kernels_enabled(False)
        ref = Column("c", list(values))
        reference = (
            ref.data_type,
            ref.non_null_values(),
            ref.text_values(),
            [repr(v) for v in ref.numeric_values()],
            ref.value_counts(),
            ref.sample(20, seed=11),
            repr(ref.unique_fraction()),
            repr(ref.null_fraction()),
        )
        colblock.set_kernels_enabled(True)
        block = Table([Column("c", list(values))], name="t").to_block()
        col = block.columns[0]
        got = (
            col.data_type,
            col.non_null_values(),
            col.text_values(),
            [repr(v) for v in col.numeric_values()],
            col.value_counts(),
            col.sample(20, seed=11),
            repr(col.unique_fraction()),
            repr(col.null_fraction()),
        )
        assert got == reference, f"trial {trial}: {values!r}"


def test_numeric_parity_formatted_shapes():
    """The vectorized parse_number fast path agrees with the real function."""
    rng = random.Random(5150)
    digits = "0123456789"

    def core():
        body = "".join(rng.choice(digits) for _ in range(rng.randint(1, 6)))
        if rng.random() < 0.4:
            body += "." + "".join(rng.choice(digits) for _ in range(rng.randint(0, 3)))
        if rng.random() < 0.3:
            pos = rng.randint(0, len(body))
            body = body[:pos] + "," + body[pos:]
        return body

    shapes = [
        lambda: f"${core()}",
        lambda: f"$ {core()}",
        lambda: f"{core()}%",
        lambda: f"{core()} %",
        lambda: f"({core()})",
        lambda: f"$({core()})",
        lambda: f"{core()}{rng.choice('kKmMbB')}",
        lambda: f"-{core()}",
        lambda: f"+{core()}e{rng.randint(0, 20)}",
        lambda: rng.choice(
            ["$", "%", "$$5", "12$", "1%2", "12% %", "(", "()", "5)", "k",
             ",", "5,", ",5", "1,2e3", "$-", "."]
        ),
    ]
    values = [rng.choice(shapes)() for _ in range(400)]
    view = view_from_values(values)
    assert view is not None
    kernel_numbers = colblock.kernel_numeric_values(view)
    assert kernel_numbers is not None
    expected = [
        number
        for number in (parse_number(str(v).strip()) for v in values)
        if number is not None
    ]
    assert [repr(n) for n in kernel_numbers] == [repr(n) for n in expected]


# ------------------------------------------------------- fallback accounting


def test_fallback_counters_and_reasons():
    colblock.reset_kernel_stats()
    _kernel_profile(["São Paulo", "Bogotá", "Lima"])
    stats = colblock.kernel_stats()
    assert stats["kernel_fallbacks"] > 0
    assert stats["fallback_reasons"].get("non-ascii text", 0) > 0

    colblock.reset_kernel_stats()
    _kernel_profile([2**64, 1, 2])
    assert colblock.kernel_stats()["fallback_reasons"].get("bigint cells", 0) > 0

    colblock.reset_kernel_stats()
    _kernel_profile(["text", 1, 2])
    reasons = colblock.kernel_stats()["fallback_reasons"]
    assert reasons.get("mixed text and scalar cells", 0) > 0

    colblock.reset_kernel_stats()
    _kernel_profile(["plain", "ascii", "works"])
    stats = colblock.kernel_stats()
    assert stats["kernel_hits"] > 0
    assert stats["kernel_fallbacks"] == 0


def test_view_rejects_out_of_vocabulary_cells():
    assert view_from_values([object()]) is None
    assert view_from_values([["nested"]]) is None
    assert view_from_values(["fine", 1, None]) is not None


# ----------------------------------------------------------- to_block plumbing


def test_to_block_attaches_views_and_caches_twin():
    table = Table([Column("a", ["x", "y"]), Column("b", [1, 2])], name="t")
    twin = table.to_block()
    assert twin is not table
    assert all(c._kernel_view() is not None for c in twin.columns)
    # Same values objects, no copy; twin cached per column-list identity.
    assert twin.columns[0].values is table.columns[0].values
    assert table.to_block() is twin
    # A block-native table converts to itself (no pointless re-encode).
    assert twin.to_block() is twin


def test_to_block_invalidated_by_add_column():
    table = Table([Column("a", ["x", "y"])], name="t")
    first = table.to_block()
    table.add_column(Column("b", [1, 2]))
    second = table.to_block()
    assert second is not first
    assert len(second.columns) == 2


def test_to_block_disabled_is_identity():
    table = Table([Column("a", ["x"])], name="t")
    colblock.set_kernels_enabled(False)
    try:
        assert table.to_block() is table
    finally:
        colblock.set_kernels_enabled(True)


def test_pickle_strips_kernel_views():
    twin = Table([Column("a", ["x", "y", "x"])], name="t").to_block()
    reference = profile_column(twin.columns[0])
    clone = pickle.loads(pickle.dumps(twin.columns[0]))
    assert clone._block_view is None
    assert clone._view_checked is False
    _assert_profiles_identical(reference, profile_column(clone))


# -------------------------------------------------------- transport round-trip


def test_transport_block_roundtrip_profile_parity():
    tables = [
        Table(
            [
                Column("name", ["Ada", "Grace", None, "Edsger"]),
                Column("score", [1.5, -0.0, 2.25, None]),
                Column("count", [1, 2, 3, 4]),
                Column("price", ["$1,234.56", "$ 99", "12.5%", "(5)"]),
                Column("city", ["São Paulo", "Lima", "Quito", "Bogotá"]),
            ],
            name="roundtrip",
        )
    ]
    payload = ColumnBlockCodec.encode_tables(tables)
    assert payload is not None
    block = ColumnBlockCodec.decode(bytes(payload))
    decoded = Table.from_block(block, 0)

    # Every column resolves a view straight off the transport buffers; the
    # non-ASCII city column's *analysis* then refuses to run vectorized.
    assert all(c._kernel_view() is not None for c in decoded.columns)

    colblock.reset_kernel_stats()
    for original, roundtripped in zip(tables[0].columns, decoded.columns):
        _assert_profiles_identical(
            _python_profile(original.values, name=original.name),
            profile_column(roundtripped),
        )
    stats = colblock.kernel_stats()
    assert stats["kernel_hits"] > 0
    assert stats["fallback_reasons"].get("non-ascii text", 0) > 0


# ------------------------------------------------------------- observability


def test_summary_reports_kernel_stats_and_timings(pretrained_typer):
    colblock.reset_kernel_stats()
    table = Table(
        [Column("email", ["a@b.com", "c@d.org", "e@f.net"])], name="obs"
    )
    pretrained_typer.annotate_corpus([table])
    summary = pretrained_typer.summary()

    kernels = summary["columnar_kernels"]
    assert kernels["kernel_hits"] > 0
    assert set(kernels) >= {
        "kernel_hits", "kernel_fallbacks", "encode_fallbacks", "by_op",
        "fallback_reasons",
    }

    timings = summary["timings"]
    assert "profile" in timings
    for entry in timings.values():
        assert entry["calls"] > 0
        assert math.isfinite(entry["seconds"]) and entry["seconds"] >= 0.0


def test_transport_block_fuzz_profile_parity():
    """Seeded datagen fuzz: vectorized profiles over transport buffers match
    the per-value python path for random tables over the full cell-type space
    (the same generator the codec and net suites fuzz with).  Parity includes
    failure parity: where the seed python path raises (stdlib ``statistics``
    rejects nan/inf), the kernel path must raise the same exception type
    rather than silently produce a number."""
    from datagen import random_table

    rng = random.Random(0xB10C)
    for trial in range(60):
        table = random_table(rng)
        block = ColumnBlockCodec.decode(
            bytes(ColumnBlockCodec.encode_tables([table]))
        )
        decoded = Table.from_block(block, 0)
        for original, roundtripped in zip(table.columns, decoded.columns):
            try:
                reference = _python_profile(original.values, name=original.name)
            except Exception as seed_error:
                with pytest.raises(type(seed_error)):
                    profile_column(roundtripped)
                continue
            _assert_profiles_identical(reference, profile_column(roundtripped))
        block.close()
