"""Unit tests for the baseline detectors."""

from __future__ import annotations

import pytest

from repro.baselines import (
    HeaderOnlyBaseline,
    RegexDictionaryBaseline,
    SatoLikeBaseline,
    SherlockLikeBaseline,
)
from repro.core.errors import ModelNotTrainedError
from repro.core.ontology import UNKNOWN_TYPE
from repro.core.table import Column, Table
from repro.evaluation import evaluate_annotator
from repro.nn import MLPConfig


class TestRegexDictionaryBaseline:
    @pytest.fixture(scope="class")
    def baseline(self):
        return RegexDictionaryBaseline()

    def test_detects_regex_types(self, baseline):
        column = Column("contact", ["a@x.com", "b@y.org", "c@z.io"])
        assert baseline.predict_type(column) == "email"

    def test_detects_dictionary_types(self, baseline):
        column = Column("place", ["Amsterdam", "Paris", "Tokyo", "Berlin"])
        assert baseline.predict_type(column) == "city"

    def test_abstains_on_free_text(self, baseline):
        column = Column("notes", ["completely free text", "another remark", "more words"])
        assert baseline.predict_type(column) == UNKNOWN_TYPE

    def test_limited_coverage(self, baseline, ontology):
        leaf_types = [t.name for t in ontology if not ontology.children(t.name) and t.name != UNKNOWN_TYPE]
        assert len(baseline.covered_types) < len(leaf_types)

    def test_annotate_table(self, baseline, fig3_table):
        prediction = baseline.annotate(fig3_table)
        assert len(prediction) == 4
        assert prediction.prediction_for("Cities").predicted_type == "city"

    def test_fit_is_noop(self, baseline, small_corpus):
        assert baseline.fit(small_corpus) is baseline


class TestHeaderOnlyBaseline:
    @pytest.fixture(scope="class")
    def baseline(self, ontology):
        return HeaderOnlyBaseline(ontology)

    def test_header_match(self, baseline):
        assert baseline.predict_type(Column("salary", ["1", "2"])) == "salary"

    def test_never_uses_values(self, baseline):
        # Identical header, wildly different values: prediction must not change.
        numbers = Column("mystery", ["1", "2", "3"])
        emails = Column("mystery", ["a@x.com", "b@y.com", "c@z.com"])
        assert baseline.predict_type(numbers) == baseline.predict_type(emails)

    def test_abstains_on_uninformative_header(self, baseline):
        scores = baseline.predict_column(Column("col_7", ["a@x.com", "b@y.com"]))
        assert not scores or scores[0].type_name != "email"


class TestLearnedBaselines:
    @pytest.fixture(scope="class")
    def sherlock(self, small_corpus):
        baseline = SherlockLikeBaseline(mlp_config=MLPConfig(max_epochs=25, hidden_sizes=(64,), seed=1))
        baseline.fit(small_corpus)
        return baseline

    @pytest.fixture(scope="class")
    def sato(self, small_corpus):
        baseline = SatoLikeBaseline(mlp_config=MLPConfig(max_epochs=25, hidden_sizes=(64,), seed=1))
        baseline.fit(small_corpus)
        return baseline

    def test_use_before_fit_raises(self):
        with pytest.raises(ModelNotTrainedError):
            SherlockLikeBaseline().predict_type(Column("x", ["1"]))

    def test_sherlock_predicts_from_values_only(self, sherlock):
        emails = Column("anything", ["a@x.com", "b@y.org", "c@corp.net", "d@mail.io"])
        top3 = [score.type_name for score in sherlock.predict_column(emails)[:3]]
        assert "email" in top3

    def test_sherlock_ignores_table_context(self, sherlock, fig3_table):
        column = fig3_table["Income"]
        assert sherlock.predict_column(column, fig3_table) == sherlock.predict_column(column, None)

    def test_sato_uses_table_context(self, sato):
        column = Column("value", ["75", "82", "64", "91"])
        medical_table = Table([column, Column("patient_id", ["MRN1", "MRN2", "MRN3", "MRN4"]),
                               Column("bp", ["120/80", "130/85", "118/76", "140/90"])])
        commerce_table = Table([column, Column("product", ["Desk", "Chair", "Lamp", "Mouse"]),
                                Column("order_id", ["1", "2", "3", "4"])])
        medical_scores = sato.predict_column(column, medical_table)
        commerce_scores = sato.predict_column(column, commerce_table)
        assert [s.type_name for s in medical_scores] != [s.type_name for s in commerce_scores] or [
            round(s.confidence, 6) for s in medical_scores
        ] != [round(s.confidence, 6) for s in commerce_scores]

    def test_learned_baselines_beat_chance_on_held_out_data(self, sherlock, sato, eval_corpus):
        sherlock_result = evaluate_annotator(sherlock, eval_corpus, name="sherlock")
        sato_result = evaluate_annotator(sato, eval_corpus, name="sato")
        assert sherlock_result.metrics.accuracy > 0.2
        assert sato_result.metrics.accuracy > 0.2
