"""Unit tests for the cascading pipeline."""

from __future__ import annotations

from typing import Sequence

import pytest

from repro.core.errors import ConfigurationError, PipelineError
from repro.core.ontology import UNKNOWN_TYPE
from repro.core.pipeline import CascadeConfig, PipelineStep, TypeDetectionPipeline
from repro.core.prediction import TypeScore
from repro.core.table import Table


class StubStep(PipelineStep):
    """A deterministic step returning canned scores and recording its calls."""

    def __init__(self, name: str, cost_rank: int, answers: dict[str, list[TypeScore]]):
        self.name = name
        self.cost_rank = cost_rank
        self.answers = answers
        self.calls: list[list[int]] = []

    def predict_columns(self, table: Table, column_indices: Sequence[int] | None = None):
        indices = list(range(table.num_columns)) if column_indices is None else list(column_indices)
        self.calls.append(indices)
        return {i: list(self.answers.get(table.columns[i].name, [])) for i in indices}


@pytest.fixture()
def table() -> Table:
    return Table.from_columns_dict(
        {"confident": ["a"], "uncertain": ["b"], "unknown_col": ["c"]}, name="stub"
    )


class TestPipelineConstruction:
    def test_requires_steps(self):
        with pytest.raises(PipelineError):
            TypeDetectionPipeline([])

    def test_duplicate_step_names_rejected(self, table):
        step_a = StubStep("same", 0, {})
        step_b = StubStep("same", 1, {})
        with pytest.raises(PipelineError):
            TypeDetectionPipeline([step_a, step_b])

    def test_steps_sorted_by_cost(self):
        slow = StubStep("slow", 5, {})
        fast = StubStep("fast", 1, {})
        pipeline = TypeDetectionPipeline([slow, fast])
        assert pipeline.step_names == ["fast", "slow"]

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            CascadeConfig(confidence_threshold=1.5).validate()
        with pytest.raises(ConfigurationError):
            CascadeConfig(tau=-0.1).validate()
        with pytest.raises(ConfigurationError):
            CascadeConfig(top_k=0).validate()


class TestCascadeBehaviour:
    def _pipeline(self, table, always_run_all=False):
        cheap = StubStep(
            "cheap", 0, {"confident": [TypeScore(0.95, "city")], "uncertain": [TypeScore(0.4, "country")]}
        )
        expensive = StubStep(
            "expensive",
            1,
            {
                "confident": [TypeScore(0.9, "city")],
                "uncertain": [TypeScore(0.8, "country")],
                "unknown_col": [TypeScore(0.9, UNKNOWN_TYPE)],
            },
        )
        config = CascadeConfig(confidence_threshold=0.85, tau=0.3, always_run_all_steps=always_run_all)
        return TypeDetectionPipeline([cheap, expensive], config=config), cheap, expensive

    def test_confident_columns_skip_later_steps(self, table):
        pipeline, cheap, expensive = self._pipeline(table)
        prediction = pipeline.annotate(table)
        # The cheap step ran on all three columns; the expensive step only on
        # the two whose confidence stayed below the threshold.
        assert cheap.calls == [[0, 1, 2]]
        assert expensive.calls == [[1, 2]]
        assert prediction.step_trace == {"cheap": 3, "expensive": 2}

    def test_always_run_all_steps(self, table):
        pipeline, cheap, expensive = self._pipeline(table, always_run_all=True)
        pipeline.annotate(table)
        assert expensive.calls == [[0, 1, 2]]

    def test_final_predictions_aggregate_steps(self, table):
        pipeline, _, _ = self._pipeline(table)
        prediction = pipeline.annotate(table)
        mapping = prediction.as_mapping()
        assert mapping["confident"] == "city"
        assert mapping["uncertain"] == "country"

    def test_unknown_top_vote_causes_abstention(self, table):
        pipeline, _, _ = self._pipeline(table)
        prediction = pipeline.annotate(table)
        unknown_prediction = prediction.prediction_for("unknown_col")
        assert unknown_prediction.abstained
        assert unknown_prediction.predicted_type == UNKNOWN_TYPE

    def test_tau_abstention(self, table):
        cheap = StubStep("cheap", 0, {"confident": [TypeScore(0.2, "city")]})
        pipeline = TypeDetectionPipeline([cheap], config=CascadeConfig(tau=0.5))
        prediction = pipeline.annotate(table)
        assert prediction.prediction_for("confident").abstained

    def test_step_timings_recorded(self, table):
        pipeline, _, _ = self._pipeline(table)
        prediction = pipeline.annotate(table)
        assert set(prediction.step_seconds) == {"cheap", "expensive"}
        assert all(seconds >= 0.0 for seconds in prediction.step_seconds.values())

    def test_annotate_many(self, table):
        pipeline, _, _ = self._pipeline(table)
        predictions = pipeline.annotate_many([table, table])
        assert len(predictions) == 2

    def test_empty_table(self):
        pipeline = TypeDetectionPipeline([StubStep("only", 0, {})])
        prediction = pipeline.annotate(Table([], name="empty"))
        assert len(prediction) == 0
