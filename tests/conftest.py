"""Shared fixtures for the test suite.

Expensive artifacts (a trained classifier, a fully pretrained SigmaTyper) are
session-scoped and use deliberately small corpora / few epochs so the whole
suite stays fast while still exercising the real training code paths.
"""

from __future__ import annotations

import pytest

from repro import SigmaTyper, SigmaTyperConfig, Table
from repro.adaptation import GlobalModelConfig
from repro.core.ontology import build_default_ontology
from repro.corpus import GitTablesConfig, GitTablesGenerator, build_ood_corpus
from repro.embedding_model import ColumnFeaturizer, TableEmbeddingClassifier
from repro.nn import MLPConfig


@pytest.fixture(scope="session")
def ontology():
    """The default DBpedia-style ontology (includes the unknown type)."""
    return build_default_ontology()


@pytest.fixture(scope="session")
def small_corpus():
    """A small GitTables-like training corpus (30 tables)."""
    return GitTablesGenerator(GitTablesConfig(num_tables=45, seed=11)).generate_corpus()


@pytest.fixture(scope="session")
def eval_corpus():
    """A held-out GitTables-like corpus from a different seed (10 tables)."""
    return GitTablesGenerator(GitTablesConfig(num_tables=10, seed=4242)).generate_corpus()


@pytest.fixture(scope="session")
def background_corpus():
    """A small OOD corpus used as the unknown-class background set."""
    return build_ood_corpus(num_tables=8, seed=77)


@pytest.fixture()
def fig3_table():
    """The exact running example of Fig. 3 in the paper."""
    return Table.from_columns_dict(
        {
            "Name": ["Han Phi", "Thomas Do", "Alexis Nan"],
            "Income": ["$ 50K", "$ 60K", "$ 70K"],
            "Company": ["nytco", "Adyen", "Sigma"],
            "Cities": ["New York", "Amsterdam", "San Francisco"],
        },
        name="fig3",
        semantic_types={"Name": "name", "Income": "salary", "Company": "company", "Cities": "city"},
    )


@pytest.fixture(scope="session")
def trained_classifier(small_corpus, background_corpus):
    """A TableEmbeddingClassifier trained once for the whole session."""
    classifier = TableEmbeddingClassifier(
        featurizer=ColumnFeaturizer(),
        mlp_config=MLPConfig(max_epochs=22, hidden_sizes=(96, 48), seed=5),
    )
    classifier.fit(small_corpus, background_corpus=background_corpus)
    return classifier


@pytest.fixture(scope="session")
def pretrained_typer():
    """A small but fully assembled SigmaTyper (all three pipeline steps)."""
    config = SigmaTyperConfig(
        global_model=GlobalModelConfig(
            pretraining_tables=40,
            background_tables=10,
            mlp=MLPConfig(max_epochs=15, hidden_sizes=(96, 48), seed=9),
            seed=21,
        )
    )
    return SigmaTyper.pretrained(config=config)
