"""Fixture-driven tests for repro-lint (``repro.analysis``).

Every checker is pinned by at least one positive fixture (the rule fires on
the bug) and one negative fixture (the rule stays quiet on the fix) — the
linter is held to the same discipline as the code it checks.  On top of the
per-rule fixtures: suppression semantics (reason mandatory), the
content-fingerprint baseline, RL000 framework findings, the CLI surface,
and a live run proving the tree itself lints clean.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro.analysis import run_lint
from repro.analysis.checkers.rl001_async_blocking import AsyncBlockingChecker
from repro.analysis.checkers.rl002_lock_discipline import LockDisciplineChecker
from repro.analysis.checkers.rl003_resource_lifecycle import ResourceLifecycleChecker
from repro.analysis.checkers.rl004_parity import ParityHygieneChecker
from repro.analysis.checkers.rl005_stats_lock import StatsLockChecker
from repro.analysis.checkers.rl006_env_knobs import EnvKnobChecker
from repro.analysis.checkers.rl007_export_audit import ExportAuditChecker
from repro.analysis.cli import main as cli_main
from repro.analysis.knobs import embedded_table_problems, render_knob_table

REPO_ROOT = Path(__file__).resolve().parent.parent


def _lint(tmp_path, source, checker=None, scope="src", name="mod.py"):
    """Write *source* under ``<tmp>/<scope>/`` and lint that scope."""
    target = tmp_path / scope / name
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    checkers = [checker] if checker is not None else None
    return run_lint([scope], root=tmp_path, checkers=checkers)


def _messages(result):
    return [f"{f.check_id}: {f.message}" for f in result.findings]


# ------------------------------------------------------------------- RL001
def test_rl001_flags_blocking_calls_in_async(tmp_path):
    result = _lint(
        tmp_path,
        """\
        import time, socket

        async def handler(lock):
            time.sleep(0.1)
            conn = socket.create_connection(("h", 1))
            fh = open("/tmp/x")
            lock.acquire()
            return conn, fh
        """,
        AsyncBlockingChecker(),
    )
    ids = [f.check_id for f in result.findings]
    assert ids == ["RL001"] * 4, _messages(result)


def test_rl001_quiet_on_async_idioms_and_sync_code(tmp_path):
    result = _lint(
        tmp_path,
        """\
        import asyncio, time

        async def handler(lock):
            await asyncio.sleep(0.1)
            await lock.acquire()
            async with lock:
                pass

        def sync_worker():
            time.sleep(0.1)  # fine outside the event loop
        """,
        AsyncBlockingChecker(),
    )
    assert result.findings == []


# ------------------------------------------------------------------- RL002
def test_rl002_flags_bare_acquire_without_release(tmp_path):
    result = _lint(
        tmp_path,
        """\
        import threading

        _lock = threading.Lock()

        def work():
            _lock.acquire()
            return 1
        """,
        LockDisciplineChecker(),
    )
    assert [f.check_id for f in result.findings] == ["RL002"]


def test_rl002_quiet_on_acquire_with_finally_release(tmp_path):
    result = _lint(
        tmp_path,
        """\
        import threading

        _lock = threading.Lock()

        def work():
            _lock.acquire()
            try:
                return 1
            finally:
                _lock.release()

        def work_with(bucket):
            with _lock:
                pass
            bucket.acquire()  # not lock-ish: a token bucket, not a mutex
        """,
        LockDisciplineChecker(),
    )
    assert result.findings == []


def test_rl002_flags_fork_module_lock_not_reinitialised(tmp_path):
    source = """\
    import os, threading

    _STATE_LOCK = threading.Lock()

    def _after_fork_in_child():
        pass

    os.register_at_fork(after_in_child=_after_fork_in_child)
    """
    result = _lint(tmp_path, source, LockDisciplineChecker())
    assert [f.check_id for f in result.findings] == ["RL002"]
    assert "_STATE_LOCK" in result.findings[0].message


def test_rl002_quiet_when_fork_child_replaces_the_lock(tmp_path):
    result = _lint(
        tmp_path,
        """\
        import os, threading

        _STATE_LOCK = threading.Lock()

        def _after_fork_in_child():
            global _STATE_LOCK
            _STATE_LOCK = threading.Lock()

        os.register_at_fork(after_in_child=_after_fork_in_child)
        """,
        LockDisciplineChecker(),
    )
    assert result.findings == []


# ------------------------------------------------------------------- RL003
def test_rl003_flags_unclosed_handles(tmp_path):
    result = _lint(
        tmp_path,
        """\
        import json, socket
        from multiprocessing import shared_memory

        def leaky(path, uid):
            seg = shared_memory.SharedMemory(name=uid)
            first = seg.buf[0]
            data = json.load(open(path))
            return data, first
        """,
        ResourceLifecycleChecker(),
    )
    ids = [f.check_id for f in result.findings]
    assert ids == ["RL003", "RL003"], _messages(result)
    assert any("seg" in f.message for f in result.findings)
    assert any("never bound" in f.message for f in result.findings)


def test_rl003_quiet_on_guaranteed_or_transferred_ownership(tmp_path):
    result = _lint(
        tmp_path,
        """\
        import socket
        from contextlib import closing
        from multiprocessing import shared_memory

        def with_block(path):
            with open(path) as fh:
                return fh.read()

        def try_finally(uid):
            seg = shared_memory.SharedMemory(name=uid)
            try:
                return bytes(seg.buf)
            finally:
                seg.close()

        def transfers(registry):
            sock = socket.socket()
            registry.append(sock)

        def returned():
            return socket.create_connection(("h", 1))

        def adapted():
            with closing(socket.socket()) as sock:
                return sock.fileno()

        class Holder:
            def __init__(self):
                self._sock = socket.socket()
        """,
        ResourceLifecycleChecker(),
    )
    assert result.findings == [], _messages(result)


# ------------------------------------------------------------------- RL004
def test_rl004_flags_nondeterminism_on_result_paths(tmp_path):
    result = _lint(
        tmp_path,
        """\
        import random, time, uuid

        def score(columns, a, b):
            jitter = random.random()
            stamp = time.time()
            key = uuid.uuid4()
            bucket = hash(columns[0])
            merged = [c for c in set(a) | set(b)]
            return jitter, stamp, key, bucket, merged
        """,
        ParityHygieneChecker(),
    )
    ids = [f.check_id for f in result.findings]
    assert ids == ["RL004"] * 5, _messages(result)


def test_rl004_quiet_on_seeded_and_ordered_idioms(tmp_path):
    result = _lint(
        tmp_path,
        """\
        import random
        import time

        import numpy as np

        def score(a, b, seed):
            rng = random.Random(seed)
            gen = np.random.default_rng(seed)
            elapsed = time.monotonic()
            merged = [c for c in sorted(set(a) | set(b))]
            width = len(set(a))
            return rng.random(), gen.random(), elapsed, merged, width

        class Key:
            def __hash__(self):
                return hash(("key", 1))
        """,
        ParityHygieneChecker(),
    )
    assert result.findings == [], _messages(result)


def test_rl004_does_not_apply_to_tests_scope(tmp_path):
    result = _lint(
        tmp_path,
        "import time\n\ndef probe():\n    return time.time()\n",
        ParityHygieneChecker(),
        scope="tests",
    )
    assert result.findings == []


# ------------------------------------------------------------------- RL005
def test_rl005_flags_counter_mutation_outside_lock(tmp_path):
    result = _lint(
        tmp_path,
        """\
        import threading

        class Store:
            def __init__(self):
                self._lock = threading.Lock()
                self.hits = 0

            def record(self):
                self.hits += 1
        """,
        StatsLockChecker(),
    )
    assert [f.check_id for f in result.findings] == ["RL005"]
    assert "self.hits" in result.findings[0].message


def test_rl005_quiet_under_with_lock_or_lock_decorator(tmp_path):
    result = _lint(
        tmp_path,
        """\
        import threading

        def _holding_lock(method):
            def wrapper(self, *a, **k):
                with self._lock:
                    return method(self, *a, **k)
            return wrapper

        class Store:
            def __init__(self):
                self._lock = threading.RLock()
                self.hits = 0
                self.misses = 0

            def record(self):
                with self._lock:
                    self.hits += 1

            @_holding_lock
            def helper(self):
                self.misses += 1

            def _after_fork_in_child(self):
                self.hits += 0  # single-threaded by construction
        """,
        StatsLockChecker(),
    )
    assert result.findings == [], _messages(result)


def test_rl005_sees_lock_inherited_from_same_module_base(tmp_path):
    result = _lint(
        tmp_path,
        """\
        import threading

        class Base:
            def __init__(self):
                self._lock = threading.RLock()
                self.hits = 0

        class Derived(Base):
            def bump(self):
                self.hits += 1
        """,
        StatsLockChecker(),
    )
    assert [f.check_id for f in result.findings] == ["RL005"]
    assert "Derived" in result.findings[0].message


# ------------------------------------------------------------------- RL006
_ALL_KNOB_READS = """\
import os

def configured():
    kernels = os.environ.get("REPRO_COLUMNAR_KERNELS")
    peers = os.getenv("REPRO_NET_PEERS")
    return kernels, peers

def field(name):
    return os.environ.get(f"REPRO_NET_{name.upper()}")
"""


def test_rl006_flags_unregistered_and_too_dynamic_reads(tmp_path):
    result = _lint(
        tmp_path,
        _ALL_KNOB_READS
        + """\

def rogue(suffix):
    a = os.environ.get("REPRO_SECRET_TUNING")
    b = os.environ[f"REPRO_{suffix}"]
    return a, b
""",
        EnvKnobChecker(),
    )
    messages = _messages(result)
    assert len(result.findings) == 2, messages
    assert any("REPRO_SECRET_TUNING" in m for m in messages)
    assert any("too broad" in m for m in messages)


def test_rl006_quiet_when_every_read_is_registered(tmp_path):
    result = _lint(tmp_path, _ALL_KNOB_READS, EnvKnobChecker())
    assert result.findings == [], _messages(result)


def test_rl006_reports_stale_registry_entries(tmp_path):
    """A registered knob nothing reads is flagged against the registry."""
    result = _lint(tmp_path, "import os\n", EnvKnobChecker())
    assert result.findings, "expected stale-registry findings"
    assert all(f.path == "src/repro/analysis/knobs.py" for f in result.findings)
    assert any("REPRO_NET_PEERS" in f.message for f in result.findings)


# ------------------------------------------------------------------- RL007
_SERVING_SUBMODULE = """\
__all__ = ["Widget", "WIRE_CONSTANT", "frame_helper"]

WIRE_CONSTANT = 7


class Widget:
    pass


def frame_helper():
    return WIRE_CONSTANT
"""


def _lint_serving_tree(tmp_path, root_all):
    """A minimal serving package: one submodule class, a configurable root."""
    package = tmp_path / "src" / "repro" / "serving"
    package.mkdir(parents=True)
    package.joinpath("widget.py").write_text(_SERVING_SUBMODULE, encoding="utf-8")
    package.joinpath("__init__.py").write_text(
        f"__all__ = {root_all!r}\n", encoding="utf-8"
    )
    return run_lint(["src"], root=tmp_path, checkers=[ExportAuditChecker()])


def test_rl007_flags_class_missing_from_package_root(tmp_path):
    result = _lint_serving_tree(tmp_path, root_all=["SomethingElse"])
    messages = _messages(result)
    assert len(result.findings) == 1, messages
    assert "Widget" in messages[0]
    # Constants and functions are protocol surface, not audited API classes.
    assert "WIRE_CONSTANT" not in messages[0] and "frame_helper" not in messages[0]
    assert result.findings[0].path == "src/repro/serving/widget.py"


def test_rl007_quiet_when_root_reexports_every_class(tmp_path):
    result = _lint_serving_tree(tmp_path, root_all=["Widget"])
    assert result.findings == [], _messages(result)


def test_rl007_quiet_outside_the_serving_package(tmp_path):
    result = _lint(tmp_path, _SERVING_SUBMODULE, ExportAuditChecker())
    assert result.findings == [], _messages(result)


# ------------------------------------------------- suppressions & baseline
_VIOLATION = "import random\n\ndef roll():\n    return random.random()\n"


def test_suppression_with_reason_silences_the_finding(tmp_path):
    source = _VIOLATION.replace(
        "return random.random()",
        "return random.random()  # repro-lint: disable=RL004 fixture noise only",
    )
    result = _lint(tmp_path, source, ParityHygieneChecker())
    assert result.findings == []
    assert result.suppressed_count == 1


def test_standalone_suppression_covers_the_next_line(tmp_path):
    source = _VIOLATION.replace(
        "    return random.random()",
        "    # repro-lint: disable=RL004 fixture noise only\n    return random.random()",
    )
    result = _lint(tmp_path, source, ParityHygieneChecker())
    assert result.findings == []
    assert result.suppressed_count == 1


def test_suppression_without_reason_is_rl000_and_does_not_suppress(tmp_path):
    source = _VIOLATION.replace(
        "return random.random()",
        "return random.random()  # repro-lint: disable=RL004",
    )
    result = _lint(tmp_path, source, ParityHygieneChecker())
    ids = sorted(f.check_id for f in result.findings)
    assert ids == ["RL000", "RL004"], _messages(result)


def test_syntax_error_is_an_rl000_finding_not_a_crash(tmp_path):
    result = _lint(tmp_path, "def broken(:\n", ParityHygieneChecker())
    assert [f.check_id for f in result.findings] == ["RL000"]
    assert "syntax error" in result.findings[0].message


def test_baseline_grandfathers_old_findings_only(tmp_path):
    first = _lint(tmp_path, _VIOLATION, ParityHygieneChecker())
    assert len(first.findings) == 1
    fingerprints = frozenset(f.fingerprint for f in first.findings)

    # Same tree + baseline: the old finding no longer fails the gate.
    second = run_lint(
        ["src"],
        root=tmp_path,
        checkers=[ParityHygieneChecker()],
        baseline_fingerprints=fingerprints,
    )
    assert second.findings == [] and len(second.baselined) == 1
    assert second.exit_code == 0

    # A NEW violation fails even with the baseline in place.
    (tmp_path / "src" / "mod.py").write_text(
        _VIOLATION + "\ndef roll_again():\n    return random.random()\n",
        encoding="utf-8",
    )
    third = run_lint(
        ["src"],
        root=tmp_path,
        checkers=[ParityHygieneChecker()],
        baseline_fingerprints=fingerprints,
    )
    assert len(third.findings) == 1 and len(third.baselined) == 1
    assert third.exit_code == 1


def test_fingerprints_survive_line_renumbering(tmp_path):
    first = _lint(tmp_path, _VIOLATION, ParityHygieneChecker())
    # Push the violation down 3 lines; the fingerprint must not move.
    shifted = "# header\n# comment\n# block\n" + _VIOLATION
    second = _lint(tmp_path, shifted, ParityHygieneChecker())
    assert [f.fingerprint for f in first.findings] == [
        f.fingerprint for f in second.findings
    ]
    assert first.findings[0].line != second.findings[0].line


# ------------------------------------------------------------------ the CLI
def test_cli_explain_and_knobs(capsys):
    assert cli_main(["--explain", "rl003"]) == 0
    out = capsys.readouterr().out
    assert "RL003" in out and "docs/ARCHITECTURE.md#static-analysis" in out

    assert cli_main(["--explain", "RL999"]) == 2
    capsys.readouterr()

    assert cli_main(["--knobs"]) == 0
    out = capsys.readouterr().out
    assert embedded_table_problems(out) == []


def test_cli_list_checkers_names_all_seven(capsys):
    assert cli_main(["--list-checkers"]) == 0
    out = capsys.readouterr().out
    for check_id in ("RL001", "RL002", "RL003", "RL004", "RL005", "RL006", "RL007"):
        assert check_id in out


def test_cli_json_report_and_exit_codes(tmp_path, capsys):
    src = tmp_path / "src"
    src.mkdir()
    (src / "bad.py").write_text(_VIOLATION, encoding="utf-8")
    report_path = tmp_path / "report.json"
    code = cli_main(
        ["--root", str(tmp_path), "--json", str(report_path), "--no-baseline", "src"]
    )
    capsys.readouterr()
    assert code == 1
    report = json.loads(report_path.read_text(encoding="utf-8"))
    assert report["summary"]["new_findings"] >= 1
    rl004 = [f for f in report["findings"] if f["check_id"] == "RL004"]
    assert rl004 and rl004[0]["path"] == "src/bad.py"
    assert rl004[0]["fingerprint"]


def test_cli_write_baseline_roundtrip(tmp_path, capsys):
    src = tmp_path / "src"
    src.mkdir()
    (src / "bad.py").write_text(_VIOLATION, encoding="utf-8")
    baseline = tmp_path / "baseline.json"
    argv = ["--root", str(tmp_path), "--baseline", str(baseline), "src"]
    assert cli_main(["--write-baseline", *argv]) == 0
    capsys.readouterr()
    assert cli_main(argv) == 0  # grandfathered now
    assert "baselined" in capsys.readouterr().out


def test_cli_missing_path_is_usage_error(tmp_path, capsys):
    assert cli_main(["--root", str(tmp_path), "no-such-dir"]) == 2
    capsys.readouterr()


# ------------------------------------------------------------ the live tree
def test_live_tree_lints_clean():
    """The gate CI enforces: the repo's own code passes all six checkers
    (with its committed baseline, which may only ever shrink)."""
    code = cli_main(
        ["--root", str(REPO_ROOT), "src", "tests", "benchmarks", "--json", "-"]
    )
    assert code == 0


def test_committed_baseline_is_small():
    """ISSUE bar: the tree is fixed, not grandfathered — baseline <= 5."""
    baseline_path = REPO_ROOT / ".repro-lint-baseline.json"
    data = json.loads(baseline_path.read_text(encoding="utf-8"))
    assert len(data["findings"]) <= 5


def test_serving_docs_embed_current_knob_table():
    text = (REPO_ROOT / "docs" / "SERVING.md").read_text(encoding="utf-8")
    assert embedded_table_problems(text) == []
    assert render_knob_table() in text
