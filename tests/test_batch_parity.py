"""Parity tests for the batched inference fast path.

The cascade's batch path (``extract_many``, ``predict_proba_batch``, batched
header matching) must be a pure optimisation: per-column features are bitwise
identical to the one-at-a-time path, ranked predictions are identical, and
probabilities agree to floating-point noise (a batched matrix product may
differ from a per-row product in the last ulp).  The memoized profile/value
layer on :class:`~repro.core.table.Column` must honour explicit invalidation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.table import Column, Table
from repro.embedding_model.features import ColumnFeaturizer
from repro.embedding_model.step import TableEmbeddingStep
from repro.matching.embeddings import SubwordEmbedder
from repro.matching.header_matcher import HeaderMatcher
from repro.profiler.statistics import profile_column


def _tables(corpus, limit=6):
    return list(corpus)[:limit]


def _rows(tables):
    return [(column, table) for table in tables for column in table.columns]


class TestFeaturizerParity:
    def test_extract_many_matches_extract_bitwise(self, eval_corpus):
        """Batch featurization equals the per-column path, bit for bit.

        Two independent featurizer instances are used so the comparison also
        proves that cache warmth (profiles, phrase embeddings, shape masks)
        never changes a value.
        """
        rows = _rows(_tables(eval_corpus))
        batch_featurizer = ColumnFeaturizer()
        single_featurizer = ColumnFeaturizer()

        batched = batch_featurizer.extract_many(rows)
        singles = np.vstack(
            [single_featurizer.extract(column, table) for column, table in rows]
        )
        assert batched.shape == singles.shape
        assert np.array_equal(batched, singles)

    def test_extract_samples_once_per_column(self, eval_corpus):
        """extract() issues exactly one value-sampling call per column."""
        table = _tables(eval_corpus, limit=1)[0]
        column = table.columns[0].copy()
        calls = []
        original = Column.sample

        def counting_sample(self, k, seed=None):
            calls.append((k, seed))
            return original(self, k, seed=seed)

        Column.sample = counting_sample
        try:
            ColumnFeaturizer().extract(column, table)
        finally:
            Column.sample = original
        assert len(calls) == 1


class TestClassifierParity:
    def test_predict_proba_batch_close_to_single(self, trained_classifier, eval_corpus):
        rows = _rows(_tables(eval_corpus, limit=4))
        batched = trained_classifier.predict_proba_batch(rows)
        vocabulary = trained_classifier.vocabulary
        assert batched.shape == (len(rows), len(vocabulary))
        for row_index, (column, table) in enumerate(rows):
            single = trained_classifier.predict_proba(column, table)
            single_vector = np.array([single[t] for t in vocabulary.types])
            np.testing.assert_allclose(
                batched[row_index], single_vector, rtol=1e-9, atol=1e-12
            )

    def test_batch_predictions_identical_to_single(self, trained_classifier, eval_corpus):
        """The ranked candidates (names and order) match the per-column path."""
        rows = _rows(_tables(eval_corpus, limit=4))
        batched = trained_classifier.predict_columns_batch(rows, top_k=5)
        for (column, table), ranked in zip(rows, batched):
            single = trained_classifier.predict_column(column, table, top_k=5)
            assert [s.type_name for s in ranked] == [s.type_name for s in single]
            np.testing.assert_allclose(
                [s.confidence for s in ranked],
                [s.confidence for s in single],
                rtol=1e-9,
                atol=1e-12,
            )

    def test_embedding_step_uses_batch_path(self, trained_classifier, eval_corpus):
        table = _tables(eval_corpus, limit=1)[0]
        step = TableEmbeddingStep(trained_classifier)
        results = step.predict_columns(table)
        assert sorted(results) == list(range(table.num_columns))
        for index, ranked in results.items():
            single = trained_classifier.predict_column(
                table.columns[index], table, top_k=step.top_k
            )
            assert [s.type_name for s in ranked] == [s.type_name for s in single]


class TestHeaderMatcherParity:
    def test_batched_header_matching_identical(self, ontology, eval_corpus):
        """Table-at-a-time matching equals fresh per-column matching exactly."""
        tables = _tables(eval_corpus)
        batch_matcher = HeaderMatcher.with_trained_embedder(ontology)
        fresh_matcher = HeaderMatcher(
            ontology, embedder=batch_matcher.embedder, config=batch_matcher.config
        )
        for table in tables:
            batched = batch_matcher.predict_columns(table)
            for index, column in enumerate(table.columns):
                assert batched[index] == fresh_matcher.predict_column(column, table)

    def test_alias_screen_is_exact(self, ontology):
        """The vectorized candidate screen never changes syntactic scores.

        Compares the screened scorer against the unscreened reference loop
        (score every alias with combined_similarity) over headers designed to
        stress every screen branch: exact aliases, near-misses, token
        reorderings, abbreviations, and unrelated noise.
        """
        from repro.matching.fuzzy import combined_similarity, normalize_header

        matcher = HeaderMatcher.with_trained_embedder(ontology)

        def reference(header):
            best = {}
            for alias, type_names in matcher._alias_index.items():
                similarity = combined_similarity(header, alias)
                if similarity < matcher.config.syntactic_threshold:
                    continue
                confidence = (
                    1.0 if similarity >= matcher.config.exact_threshold else similarity
                )
                for type_name in type_names:
                    if confidence > best.get(type_name, 0.0):
                        best[type_name] = confidence
            return best

        headers = [
            "salary", "Salaries", "anual_salary", "customer name", "name of customer",
            "CUST_NM", "birth date", "date_of_birth", "dt", "email adress",
            "e-mail", "zip", "zipcode", "phone number", "compny", "citty",
            "qty", "x", "foobarbaz", "latitude longitude", "user id",
        ]
        headers += list(matcher._alias_index)[:40]
        for header in headers:
            normalized = normalize_header(header)
            if not normalized:
                continue
            assert matcher._syntactic_scores(normalized) == reference(normalized), header

    def test_type_matrix_rows_are_normalised_embeddings(self, ontology):
        matcher = HeaderMatcher.with_trained_embedder(ontology)
        assert matcher._type_matrix is not None
        assert matcher._type_matrix.shape[0] == len(matcher._type_names)
        for row, name in zip(matcher._type_matrix, matcher._type_names):
            assert np.array_equal(row, np.asarray(matcher._type_embeddings[name]))
            norm = np.linalg.norm(row)
            assert norm == 0.0 or norm == pytest.approx(1.0)


class TestEmbedderCaches:
    def test_phrase_cache_hits_return_same_vector(self):
        embedder = SubwordEmbedder()
        first = embedder.embed_text("customer name")
        second = embedder.embed_text("customer name")
        assert first is second  # cached object, not a recomputation

    def test_fit_invalidates_phrase_cache(self):
        embedder = SubwordEmbedder(ngram_dim=32, context_dim=8)
        before = embedder.embed_text("salary")
        assert before.shape == (32,)
        embedder.fit([["salary", "income"], ["city", "town"]])
        after = embedder.embed_text("salary")
        assert after.shape == (40,)

    def test_most_similar_uses_cached_candidate_matrix(self):
        embedder = SubwordEmbedder()
        candidates = ["salaries", "country", "price"]
        first = embedder.most_similar("salary", candidates, top_k=3)
        assert len(embedder._candidate_cache) == 1
        second = embedder.most_similar("salary", candidates, top_k=3)
        assert first == second
        assert first[0][0] == "salaries"


class TestProfileMemoization:
    def test_profile_is_memoized_per_column(self):
        column = Column("status", ["Active", "Inactive", "Active", None])
        first = profile_column(column)
        assert profile_column(column) is first

    def test_invalidate_cache_refreshes_profile_and_views(self):
        column = Column("status", ["Active", "Inactive"])
        stale_profile = profile_column(column)
        assert stale_profile.row_count == 2
        assert column.text_values() == ["Active", "Inactive"]

        column.values.append("Pending")
        # Derived state is memoized: an explicit invalidation is required.
        assert profile_column(column) is stale_profile
        column.invalidate_cache()

        fresh_profile = profile_column(column)
        assert fresh_profile is not stale_profile
        assert fresh_profile.row_count == 3
        assert fresh_profile.distinct_count == 3
        assert column.text_values() == ["Active", "Inactive", "Pending"]

    def test_sample_cache_is_keyed_by_arguments(self):
        column = Column("x", [str(i) for i in range(100)])
        a = column.sample(10, seed=1)
        b = column.sample(10, seed=2)
        assert column.sample(10, seed=1) is a
        assert a != b

    def test_copies_do_not_share_caches(self):
        column = Column("x", ["1", "2", "3"])
        profile_column(column)
        clone = column.copy()
        clone.values.append("4")
        assert profile_column(clone).row_count == 4
        assert profile_column(column).row_count == 3


class TestBulkAnnotation:
    def test_annotate_corpus_matches_per_table_annotate(self, pretrained_typer, eval_corpus):
        tables = _tables(eval_corpus, limit=4)
        bulk = pretrained_typer.annotate_corpus(tables)
        assert len(bulk) == len(tables)
        for table, bulk_prediction in zip(tables, bulk):
            single = pretrained_typer.annotate(table)
            assert [c.predicted_type for c in bulk_prediction.columns] == [
                c.predicted_type for c in single.columns
            ]
            assert [c.abstained for c in bulk_prediction.columns] == [
                c.abstained for c in single.columns
            ]

    def test_full_ontology_parity_smoke(self, pretrained_typer):
        """A fresh synthetic table annotated twice gives identical results."""
        table = Table.from_columns_dict(
            {
                "Name": ["Ann Li", "Bo Chen", "Cy Dee"],
                "City": ["Paris", "Berlin", "Madrid"],
                "Total": ["12.5", "99.0", "4.25"],
            },
            name="parity-smoke",
        )
        first = pretrained_typer.annotate(table)
        second = pretrained_typer.annotate(table)
        assert [c.predicted_type for c in first.columns] == [
            c.predicted_type for c in second.columns
        ]
        assert [c.scores for c in first.columns] == [c.scores for c in second.columns]
