"""Unit tests for the subword embedding model (FastText substitute)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.matching.embeddings import SubwordEmbedder, cosine_similarity


class TestCosineSimilarity:
    def test_identical_vectors(self):
        vector = np.array([1.0, 2.0, 3.0])
        assert cosine_similarity(vector, vector) == pytest.approx(1.0)

    def test_orthogonal_vectors(self):
        assert cosine_similarity(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == pytest.approx(0.0)

    def test_zero_vector(self):
        assert cosine_similarity(np.zeros(3), np.ones(3)) == 0.0


class TestSubwordEmbedder:
    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            SubwordEmbedder(ngram_dim=0)
        with pytest.raises(ConfigurationError):
            SubwordEmbedder(ngram_range=(5, 3))

    def test_deterministic_across_instances(self):
        first = SubwordEmbedder().embed_text("customer name")
        second = SubwordEmbedder().embed_text("customer name")
        np.testing.assert_allclose(first, second)

    def test_dim_without_fit(self):
        embedder = SubwordEmbedder(ngram_dim=64, context_dim=16)
        assert embedder.dim == 64
        assert embedder.embed_text("salary").shape == (64,)

    def test_dim_after_fit(self):
        embedder = SubwordEmbedder(ngram_dim=64, context_dim=16)
        embedder.fit([["salary", "income"], ["city", "town"]])
        assert embedder.is_fitted
        assert embedder.dim == 80
        assert embedder.embed_text("salary").shape == (80,)

    def test_empty_text_embeds_to_zero(self):
        embedder = SubwordEmbedder()
        assert np.allclose(embedder.embed_text(""), 0.0)

    def test_shared_subwords_increase_similarity(self):
        embedder = SubwordEmbedder()
        assert embedder.similarity("salary", "salaries") > embedder.similarity("salary", "country")

    def test_abbreviation_robustness(self):
        embedder = SubwordEmbedder()
        assert embedder.similarity("cust_name", "customer_name") > embedder.similarity(
            "cust_name", "unit_price"
        )

    def test_fit_groups_synonyms_together(self):
        embedder = SubwordEmbedder()
        embedder.fit(
            [
                ["salary", "income", "wage", "compensation"],
                ["city", "town", "municipality"],
                ["country", "nation"],
            ]
        )
        # "income" and "salary" share no character n-grams, so only the
        # learned component can pull them together.
        assert embedder.similarity("income", "salary") > embedder.similarity("income", "city")

    def test_fit_with_empty_sentences(self):
        embedder = SubwordEmbedder()
        embedder.fit([])
        assert not embedder.is_fitted

    def test_most_similar_with_sequence(self):
        embedder = SubwordEmbedder()
        ranked = embedder.most_similar("salary", ["salaries", "country", "price"], top_k=2)
        assert len(ranked) == 2
        assert ranked[0][0] == "salaries"

    def test_most_similar_with_mapping(self):
        embedder = SubwordEmbedder()
        ranked = embedder.most_similar(
            "zip", {"zip_code": "zip code postal", "salary": "salary income"}, top_k=1
        )
        assert ranked[0][0] == "zip_code"

    def test_vocabulary_exposed_after_fit(self):
        embedder = SubwordEmbedder()
        embedder.fit([["salary", "income"]])
        assert "salary" in embedder.vocabulary
