"""Unit tests for the data profiler (statistics and expectation suites)."""

from __future__ import annotations

import pytest

from repro.core.datatypes import DataType
from repro.core.errors import ConfigurationError
from repro.core.table import Column
from repro.profiler import (
    Expectation,
    ExpectationSuite,
    build_expectation_suite,
    character_template,
    profile_column,
)


class TestCharacterTemplate:
    @pytest.mark.parametrize(
        "value,template",
        [
            ("AB-123", "AA-999"),
            ("abc", "aaa"),
            ("a1b2", "a9a9"),
            ("", ""),
            ("ABCD", "AAA+"),
        ],
    )
    def test_templates(self, value, template):
        assert character_template(value) == template


class TestProfileColumn:
    def test_numeric_profile(self):
        column = Column("salary", ["10", "20", "30", "40", None])
        profile = profile_column(column)
        assert profile.data_type is DataType.INTEGER
        assert profile.row_count == 5
        assert profile.null_count == 1
        assert profile.minimum == 10
        assert profile.maximum == 40
        assert profile.mean == pytest.approx(25.0)
        assert profile.median == pytest.approx(25.0)
        assert profile.quartile_1 == pytest.approx(17.5)
        assert profile.quartile_3 == pytest.approx(32.5)
        assert profile.is_numeric

    def test_text_profile(self):
        column = Column("status", ["Active", "Inactive", "Active", "Active"])
        profile = profile_column(column)
        assert not profile.is_numeric
        assert profile.distinct_count == 2
        assert profile.most_frequent_values[0] == "Active"
        assert profile.looks_categorical
        assert not profile.looks_like_identifier
        assert 0 < profile.alpha_fraction <= 1.0

    def test_identifier_detection(self):
        column = Column("id", [f"REC-{i}" for i in range(50)])
        profile = profile_column(column)
        assert profile.looks_like_identifier
        assert profile.unique_fraction == 1.0

    def test_null_fraction_and_empty(self):
        profile = profile_column(Column("x", [None, "", "N/A"]))
        assert profile.null_fraction == 1.0
        assert profile.distinct_count == 0
        assert not profile.is_numeric

    def test_templates_extracted(self):
        column = Column("sku", ["AB-123", "CD-456", "EF-789"])
        profile = profile_column(column)
        assert profile.common_templates == ["AA-999"]

    def test_to_dict_is_serialisable(self):
        import json

        payload = profile_column(Column("x", ["1", "2"])).to_dict()
        assert json.loads(json.dumps(payload))["row_count"] == 2


class TestExpectations:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            Expectation("does_not_exist", {})

    def test_invalid_mostly_rejected(self):
        with pytest.raises(ConfigurationError):
            Expectation("values_between", {"min": 0, "max": 1}, mostly=0.0)

    def test_values_between(self):
        expectation = Expectation("values_between", {"min": 0, "max": 100}, mostly=0.8)
        good = Column("x", ["10", "20", "99"])
        bad = Column("x", ["10", "500", "900"])
        assert expectation.check(good).success
        assert not expectation.check(bad).success

    def test_mean_between(self):
        expectation = Expectation("mean_between", {"min": 15, "max": 25})
        assert expectation.check(Column("x", ["10", "20", "30"])).success
        assert not expectation.check(Column("x", ["100", "200"])).success

    def test_std_dev_between(self):
        expectation = Expectation("std_dev_between", {"min": 0, "max": 1})
        assert expectation.check(Column("x", ["5", "5", "5"])).success
        assert not expectation.check(Column("x", ["5", "500"])).success

    def test_values_in_set(self):
        expectation = Expectation("values_in_set", {"values": ["A", "B"]}, mostly=0.9)
        assert expectation.check(Column("x", ["a", "b", "A"])).success
        assert not expectation.check(Column("x", ["a", "z", "q"])).success

    def test_values_match_regex(self):
        expectation = Expectation("values_match_regex", {"pattern": r"\d+"})
        assert expectation.check(Column("x", ["1", "22", "333"])).success
        assert not expectation.check(Column("x", ["1", "two", "three"])).success

    def test_values_match_template(self):
        expectation = Expectation("values_match_template", {"templates": ["AA-999"]}, mostly=0.6)
        assert expectation.check(Column("x", ["AB-123", "CD-977"])).success

    def test_null_fraction_at_most(self):
        expectation = Expectation("null_fraction_at_most", {"max": 0.25})
        assert expectation.check(Column("x", ["a", "b", "c", None])).success
        assert not expectation.check(Column("x", ["a", None, None, None])).success

    def test_distinct_count_between(self):
        expectation = Expectation("distinct_count_between", {"min": 1, "max": 2})
        assert expectation.check(Column("x", ["a", "b", "a"])).success
        assert not expectation.check(Column("x", ["a", "b", "c"])).success

    def test_value_lengths_between(self):
        expectation = Expectation("value_lengths_between", {"min": 2, "max": 4})
        assert expectation.check(Column("x", ["ab", "abcd"])).success
        assert not expectation.check(Column("x", ["a", "abcdefgh"])).success

    def test_unique_fraction_at_least(self):
        expectation = Expectation("unique_fraction_at_least", {"min": 0.9})
        assert expectation.check(Column("x", ["a", "b", "c"])).success
        assert not expectation.check(Column("x", ["a", "a", "a"])).success

    def test_no_applicable_values(self):
        expectation = Expectation("values_between", {"min": 0, "max": 1})
        result = expectation.check(Column("x", ["not", "numbers"]))
        assert not result.success
        assert result.observed_fraction == 0.0

    def test_describe(self):
        text = Expectation("values_between", {"min": 0, "max": 1}).describe()
        assert "values_between" in text and "min" in text


class TestExpectationSuite:
    def test_validate_and_success_fraction(self):
        suite = ExpectationSuite(
            "s",
            [
                Expectation("values_between", {"min": 0, "max": 100}),
                Expectation("mean_between", {"min": 1000, "max": 2000}),
            ],
        )
        column = Column("x", ["10", "20"])
        results = suite.validate(column)
        assert len(results) == 2
        assert suite.success_fraction(column) == pytest.approx(0.5)
        assert not suite.matches(column, required_fraction=0.8)
        assert suite.matches(column, required_fraction=0.5)

    def test_empty_suite_matches_everything(self):
        assert ExpectationSuite("empty").success_fraction(Column("x", ["a"])) == 1.0


class TestBuildExpectationSuite:
    def test_numeric_column_suite_accepts_similar_column(self):
        source = Column("salary", [str(v) for v in range(50_000, 80_000, 1_000)])
        suite = build_expectation_suite(source)
        similar = Column("pay", [str(v) for v in range(52_000, 78_000, 2_000)])
        different = Column("age", ["25", "30", "40", "55"])
        assert suite.success_fraction(similar) > suite.success_fraction(different)

    def test_categorical_column_gets_value_set(self):
        source = Column("status", ["Active", "Inactive"] * 20)
        suite = build_expectation_suite(source)
        kinds = {expectation.kind for expectation in suite}
        assert "values_in_set" in kinds

    def test_identifier_column_gets_uniqueness(self):
        source = Column("id", [f"X{i}" for i in range(40)])
        suite = build_expectation_suite(source)
        kinds = {expectation.kind for expectation in suite}
        assert "unique_fraction_at_least" in kinds

    def test_textual_column_gets_templates_or_lengths(self):
        source = Column("sku", ["AB-123", "CD-456", "EF-789", "GH-012"])
        suite = build_expectation_suite(source)
        kinds = {expectation.kind for expectation in suite}
        assert kinds & {"values_match_template", "value_lengths_between", "values_in_set"}
