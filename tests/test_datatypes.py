"""Unit tests for primitive data-type inference."""

from __future__ import annotations

import pytest

from repro.core.datatypes import (
    DataType,
    coerce_numeric,
    infer_column_type,
    infer_value_type,
    is_null,
    parse_bool,
    parse_date,
    parse_number,
)


class TestIsNull:
    def test_none_is_null(self):
        assert is_null(None)

    def test_empty_string_is_null(self):
        assert is_null("")

    @pytest.mark.parametrize("token", ["N/A", "na", "NULL", "none", "-", "?", "NaN"])
    def test_common_null_tokens(self, token):
        assert is_null(token)

    def test_nan_float_is_null(self):
        assert is_null(float("nan"))

    def test_regular_values_are_not_null(self):
        assert not is_null("0")
        assert not is_null(0)
        assert not is_null("hello")


class TestParseBool:
    @pytest.mark.parametrize("value,expected", [("true", True), ("Yes", True), ("N", False), ("FALSE", False)])
    def test_recognised_tokens(self, value, expected):
        assert parse_bool(value) is expected

    def test_bare_digits_are_not_booleans(self):
        assert parse_bool("0") is None
        assert parse_bool("1") is None

    def test_python_bool_passthrough(self):
        assert parse_bool(True) is True

    def test_unrecognised_returns_none(self):
        assert parse_bool("maybe") is None


class TestParseNumber:
    def test_plain_integer(self):
        assert parse_number("42") == 42.0

    def test_thousands_separators(self):
        assert parse_number("1,234,567") == 1234567.0

    def test_currency_symbol(self):
        assert parse_number("$ 1,200.50") == pytest.approx(1200.50)

    def test_magnitude_suffixes(self):
        assert parse_number("50K") == 50_000
        assert parse_number("3.2M") == pytest.approx(3_200_000)
        assert parse_number("1B") == 1_000_000_000

    def test_percentage_face_value(self):
        assert parse_number("12.5%") == pytest.approx(12.5)

    def test_accounting_negative(self):
        assert parse_number("(1,500)") == -1500.0

    def test_scientific_notation(self):
        assert parse_number("1.5e3") == 1500.0

    def test_non_numeric_returns_none(self):
        assert parse_number("Amsterdam") is None
        assert parse_number("12 Main St") is None

    def test_null_returns_none(self):
        assert parse_number("") is None
        assert parse_number(None) is None

    def test_python_numbers_passthrough(self):
        assert parse_number(7) == 7.0
        assert parse_number(2.5) == 2.5

    def test_bool_is_not_a_number(self):
        assert parse_number(True) is None


class TestParseDate:
    def test_iso_date(self):
        assert parse_date("2023-05-17") == "date"

    def test_us_date(self):
        assert parse_date("5/17/2023") == "date"

    def test_iso_datetime(self):
        assert parse_date("2023-05-17T08:30:00Z") == "datetime"

    def test_textual_month(self):
        assert parse_date("17 May 2023") == "date"

    def test_non_date(self):
        assert parse_date("hello") is None
        assert parse_date("12345") is None


class TestInferValueType:
    @pytest.mark.parametrize(
        "value,expected",
        [
            ("42", DataType.INTEGER),
            ("3.14", DataType.FLOAT),
            ("$5.00", DataType.FLOAT),
            ("true", DataType.BOOLEAN),
            ("2022-01-01", DataType.DATE),
            ("2022-01-01 10:00:00", DataType.DATETIME),
            ("hello world", DataType.TEXT),
            ("", DataType.EMPTY),
        ],
    )
    def test_single_values(self, value, expected):
        assert infer_value_type(value) is expected

    def test_python_native_types(self):
        assert infer_value_type(5) is DataType.INTEGER
        assert infer_value_type(5.5) is DataType.FLOAT
        assert infer_value_type(True) is DataType.BOOLEAN


class TestInferColumnType:
    def test_integer_column(self):
        assert infer_column_type(["1", "2", "3", "4"]) is DataType.INTEGER

    def test_mixed_int_float_is_float(self):
        assert infer_column_type(["1", "2.5", "3", "4.5"]) is DataType.FLOAT

    def test_text_column(self):
        assert infer_column_type(["a", "b", "c"]) is DataType.TEXT

    def test_empty_column(self):
        assert infer_column_type(["", None, "N/A"]) is DataType.EMPTY

    def test_nulls_are_ignored(self):
        assert infer_column_type(["1", None, "2", "", "3"]) is DataType.INTEGER

    def test_mixed_column(self):
        values = ["1", "hello", "2022-01-01", "2", "world", "3.5", "x", "y"]
        assert infer_column_type(values) is DataType.MIXED

    def test_boolean_column(self):
        assert infer_column_type(["yes", "no", "yes"]) is DataType.BOOLEAN

    def test_date_column(self):
        assert infer_column_type(["2022-01-01", "2022-02-01"]) is DataType.DATE

    def test_threshold_respected(self):
        # 80% integers is below the default 90% threshold.
        values = ["1", "2", "3", "4", "x", "y"]
        assert infer_column_type(values) is not DataType.INTEGER


class TestCoerceNumeric:
    def test_mixed_values(self):
        assert coerce_numeric(["1", "x", "2.5", None]) == [1.0, 2.5]

    def test_empty_input(self):
        assert coerce_numeric([]) == []
