"""Unit tests for the header-matching pipeline step."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.core.table import Column, Table
from repro.matching.header_matcher import HeaderMatcher, HeaderMatcherConfig


@pytest.fixture(scope="module")
def matcher(ontology):
    return HeaderMatcher.with_trained_embedder(ontology)


class TestConfigValidation:
    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ConfigurationError):
            HeaderMatcherConfig(syntactic_threshold=1.5).validate()
        with pytest.raises(ConfigurationError):
            HeaderMatcherConfig(exact_threshold=0.5, syntactic_threshold=0.8).validate()
        with pytest.raises(ConfigurationError):
            HeaderMatcherConfig(top_k=0).validate()


class TestHeaderMatching:
    def test_exact_header_gets_full_confidence(self, matcher):
        column = Column("salary", ["50000", "60000"])
        scores = matcher.predict_column(column)
        assert scores[0].type_name == "salary"
        assert scores[0].confidence == 1.0

    def test_synonym_header_matches(self, matcher):
        column = Column("Income", ["50000", "60000"])
        scores = matcher.predict_column(column)
        assert scores[0].type_name == "salary"

    def test_case_and_separator_insensitive(self, matcher):
        column = Column("ZIP-CODE", ["90210", "10001"])
        scores = matcher.predict_column(column)
        assert scores[0].type_name == "zip_code"

    def test_empty_header_yields_no_candidates(self, matcher):
        assert matcher.predict_column(Column("", ["a", "b"])) == []

    def test_uninformative_header_low_or_no_confidence(self, matcher):
        scores = matcher.predict_column(Column("col_3", ["a", "b"]))
        assert not scores or scores[0].confidence < 1.0

    def test_kind_filter_blocks_contradicting_types(self, ontology):
        matcher = HeaderMatcher.with_trained_embedder(ontology)
        # A column named "city" but containing numbers: the textual type
        # "city" contradicts the numeric values and must be filtered out.
        numeric_city = Column("city", ["1", "2", "3", "4"])
        scores = matcher.predict_column(numeric_city)
        assert all(score.type_name != "city" for score in scores)

    def test_kind_filter_can_be_disabled(self, ontology):
        config = HeaderMatcherConfig(filter_by_data_kind=False)
        matcher = HeaderMatcher(ontology, config=config)
        numeric_city = Column("city", ["1", "2", "3", "4"])
        scores = matcher.predict_column(numeric_city)
        assert any(score.type_name == "city" for score in scores)

    def test_top_k_respected(self, ontology):
        matcher = HeaderMatcher.with_trained_embedder(ontology, config=HeaderMatcherConfig(top_k=2))
        scores = matcher.predict_column(Column("name", ["Ann", "Bob"]))
        assert len(scores) <= 2

    def test_predict_columns_subset(self, matcher):
        table = Table.from_columns_dict({"salary": ["100"], "city": ["Rome"], "x": ["?"]})
        results = matcher.predict_columns(table, [0, 2])
        assert set(results) == {0, 2}

    def test_predict_columns_all_by_default(self, matcher):
        table = Table.from_columns_dict({"salary": ["100"], "city": ["Rome"]})
        assert set(matcher.predict_columns(table)) == {0, 1}

    def test_unknown_type_never_predicted(self, matcher, ontology):
        table = Table.from_columns_dict({"unknown": ["a", "b"]})
        scores = matcher.predict_columns(table)[0]
        assert all(score.type_name != "unknown" for score in scores)

    def test_syntactic_only_matcher_without_embedder(self, ontology):
        matcher = HeaderMatcher(ontology)  # no embedder at all
        scores = matcher.predict_column(Column("salary", ["50000"]))
        assert scores and scores[0].type_name == "salary"

    def test_abbreviated_database_header(self, matcher):
        scores = matcher.predict_column(Column("cust_nm", ["Ann Smith", "Bob Jones"]))
        # Should surface a person/name-ish candidate among the top ones rather
        # than nothing at all.
        assert scores, "abbreviated header should still produce candidates"
