"""End-to-end integration tests across subsystem boundaries."""

from __future__ import annotations

import pytest

from repro import SigmaTyper, SigmaTyperConfig, Table
from repro.adaptation import GlobalModelConfig
from repro.corpus import (
    GitTablesConfig,
    GitTablesGenerator,
    WebTablesGenerator,
    build_covariate_shift_corpus,
)
from repro.corpus.serialization import corpus_to_json, corpus_from_json, table_from_csv, table_to_csv
from repro.corpus.webtables import WebTablesConfig
from repro.evaluation import evaluate_annotator, precision_coverage_curve
from repro.evaluation.harness import PredictionRecord


class TestHeuristicsOnlySystem:
    """The system should degrade gracefully when the learned model is omitted."""

    @pytest.fixture(scope="class")
    def heuristic_typer(self):
        config = SigmaTyperConfig(global_model=GlobalModelConfig(pretraining_tables=15, seed=3))
        return SigmaTyper.pretrained(config=config, include_learned_model=False)

    def test_two_step_pipeline(self, heuristic_typer):
        assert heuristic_typer.global_model.pipeline.step_names == ["header_matching", "value_lookup"]

    def test_annotation_and_feedback_still_work(self, heuristic_typer, fig3_table):
        heuristic_typer.register_customer("acme")
        heuristic_typer.give_feedback("acme", fig3_table, "Income", "salary")
        prediction = heuristic_typer.annotate(fig3_table, customer_id="acme")
        assert prediction.prediction_for("Income").predicted_type == "salary"


class TestCsvIngestionFlow:
    def test_annotate_table_loaded_from_csv(self, pretrained_typer, tmp_path):
        table = Table.from_columns_dict(
            {
                "employee": ["Ann Smith", "Bob Jones", "Cara Lee"],
                "email": ["ann@corp.com", "bob@corp.com", "cara@corp.com"],
                "start_date": ["2021-04-01", "2019-09-15", "2022-01-03"],
                "annual_salary": ["98000", "85000", "112000"],
            },
            name="hr_export",
        )
        path = table_to_csv(table, tmp_path / "hr_export.csv")
        loaded = table_from_csv(path)
        prediction = pretrained_typer.annotate(loaded)
        mapping = prediction.as_mapping()
        assert mapping["email"] == "email"
        assert mapping["annual_salary"] == "salary"
        assert mapping["start_date"] in ("date", "timestamp", "birth_date")

    def test_corpus_round_trip_then_evaluate(self, pretrained_typer, tmp_path):
        corpus = GitTablesGenerator(GitTablesConfig(num_tables=4, seed=101)).generate_corpus()
        restored = corpus_from_json(corpus_to_json(corpus, tmp_path / "corpus.json"))
        result = evaluate_annotator(pretrained_typer, restored, name="restored")
        assert result.metrics.total == len(corpus.labeled_columns())


class TestShiftResilience:
    def test_covariate_shift_degrades_then_value_evidence_helps(self, pretrained_typer):
        shifted = build_covariate_shift_corpus(num_tables=6, seed=17)
        in_distribution = GitTablesGenerator(GitTablesConfig(num_tables=6, seed=18)).generate_corpus()
        shifted_result = evaluate_annotator(pretrained_typer, shifted, name="shifted")
        clean_result = evaluate_annotator(pretrained_typer, in_distribution, name="clean")
        # Covariate shift should hurt, but not destroy, accuracy.
        assert shifted_result.metrics.accuracy <= clean_result.metrics.accuracy + 0.05
        assert shifted_result.metrics.accuracy > 0.3

    def test_web_corpus_annotation_runs(self, pretrained_typer):
        web = WebTablesGenerator(WebTablesConfig(num_tables=5, seed=7)).generate_corpus()
        result = evaluate_annotator(pretrained_typer, web, name="web")
        assert result.metrics.total > 0


class TestPrecisionCoverageIntegration:
    def test_curve_from_live_predictions(self, pretrained_typer, eval_corpus):
        original_tau = pretrained_typer.tau
        pretrained_typer.set_tau(0.0)
        try:
            records = []
            for table in eval_corpus:
                prediction = pretrained_typer.annotate(table)
                for column, column_prediction in zip(table.columns, prediction.columns):
                    if column.semantic_type is None:
                        continue
                    records.append(
                        PredictionRecord(
                            gold_type=column.semantic_type,
                            predicted_type=column_prediction.predicted_type,
                            confidence=column_prediction.confidence,
                            abstained=column_prediction.abstained,
                        )
                    )
        finally:
            pretrained_typer.set_tau(original_tau)
        curve = precision_coverage_curve(records, taus=[0.0, 0.5, 0.9])
        coverages = [point["coverage"] for point in curve]
        assert coverages[0] >= coverages[-1]


class TestAdaptationImprovesAccuracyOnNewDomain:
    def test_feedback_rounds_increase_local_weight(self):
        config = SigmaTyperConfig(global_model=GlobalModelConfig(pretraining_tables=15, seed=5))
        typer = SigmaTyper.pretrained(config=config, include_learned_model=False)
        typer.register_customer("clinic")
        table = Table.from_columns_dict(
            {
                "pt": ["MRN100231", "MRN100232", "MRN100233"],
                "result": ["7.2", "6.9", "8.1"],
            },
            name="lab",
        )
        weights = typer.customer("clinic").local_model.weights
        assert weights.local_weight("score") == 0.0
        previous = 0.0
        for _ in range(3):
            typer.give_feedback("clinic", table, "result", "score")
            current = weights.local_weight("score")
            assert current > previous
            previous = current
        prediction = typer.annotate(table, customer_id="clinic")
        assert prediction.prediction_for("result").predicted_type == "score"
