"""Unit tests for labeling functions and their store."""

from __future__ import annotations

import pytest

from repro.core.errors import LabelingFunctionError
from repro.core.table import Column
from repro.lookup.labeling_functions import (
    CoOccurrenceLF,
    ExpectationSuiteLF,
    HeaderMatchLF,
    LabelingFunctionStore,
    LFContext,
    MeanRangeLF,
    RegexLF,
    ValueRangeLF,
    ValueSetLF,
    labeling_function_from_dict,
)
from repro.profiler.expectations import Expectation, ExpectationSuite


@pytest.fixture()
def salary_column() -> Column:
    return Column("income", ["50000", "60000", "70000", "65000"])


@pytest.fixture()
def fig3_context(fig3_table) -> LFContext:
    return LFContext(table=fig3_table, column_index=1)


class TestValueRangeLF:
    def test_fraction_of_values_in_range(self, salary_column):
        lf = ValueRangeLF("salary", low=55_000, high=80_000)
        assert lf.apply(salary_column) == pytest.approx(0.75)

    def test_all_outside_range(self, salary_column):
        assert ValueRangeLF("salary", 0, 10).apply(salary_column) == 0.0

    def test_non_numeric_column(self):
        assert ValueRangeLF("salary", 0, 100).apply(Column("x", ["a", "b"])) == 0.0

    def test_invalid_range_rejected(self):
        with pytest.raises(LabelingFunctionError):
            ValueRangeLF("salary", 100, 10)

    def test_invalid_weight_rejected(self):
        with pytest.raises(LabelingFunctionError):
            ValueRangeLF("salary", 0, 1, weight=0)

    def test_missing_target_rejected(self):
        with pytest.raises(LabelingFunctionError):
            ValueRangeLF("", 0, 1)


class TestMeanRangeLF:
    def test_fires_on_mean_inside_range(self, salary_column):
        assert MeanRangeLF("salary", 55_000, 65_000).apply(salary_column) == 1.0

    def test_silent_on_mean_outside_range(self, salary_column):
        assert MeanRangeLF("salary", 0, 10_000).apply(salary_column) == 0.0


class TestHeaderMatchLF:
    def test_exact_header(self, salary_column):
        assert HeaderMatchLF("salary", ["income"]).apply(salary_column) == 1.0

    def test_fuzzy_header(self):
        lf = HeaderMatchLF("salary", ["annual salary"])
        assert lf.apply(Column("annual_salary", ["1"])) >= 0.85

    def test_unrelated_header(self, salary_column):
        assert HeaderMatchLF("salary", ["shipping method"]).apply(salary_column) == 0.0

    def test_requires_nonempty_headers(self):
        with pytest.raises(LabelingFunctionError):
            HeaderMatchLF("salary", ["   "])


class TestCoOccurrenceLF:
    def test_fires_with_ground_truth_neighbors(self, fig3_table):
        lf = CoOccurrenceLF("salary", ["company", "name"])
        context = LFContext(table=fig3_table, column_index=1, neighbor_types=frozenset({"company", "name", "city"}))
        assert lf.apply(fig3_table["Income"], context) == 1.0

    def test_fires_from_headers_when_no_types_given(self, fig3_table):
        lf = CoOccurrenceLF("salary", ["company", "name"])
        context = LFContext(table=fig3_table, column_index=1)
        assert lf.apply(fig3_table["Income"], context) == 1.0

    def test_silent_when_required_types_absent(self, fig3_table):
        lf = CoOccurrenceLF("salary", ["blood_type"])
        context = LFContext(table=fig3_table, column_index=1)
        assert lf.apply(fig3_table["Income"], context) == 0.0

    def test_silent_without_table(self, salary_column):
        assert CoOccurrenceLF("salary", ["name"]).apply(salary_column, None) == 0.0

    def test_requires_types(self):
        with pytest.raises(LabelingFunctionError):
            CoOccurrenceLF("salary", [])


class TestRegexAndValueSetLF:
    def test_regex_fraction(self):
        lf = RegexLF("email", r"[^@]+@[^@]+\.[a-z]+")
        column = Column("contact", ["a@b.com", "not-an-email", "c@d.org"])
        assert lf.apply(column) == pytest.approx(2 / 3)

    def test_invalid_regex_rejected(self):
        with pytest.raises(LabelingFunctionError):
            RegexLF("email", "([")

    def test_value_set_case_insensitive(self):
        lf = ValueSetLF("status", ["Active", "Inactive"])
        column = Column("s", ["active", "ACTIVE", "inactive", "other"])
        assert lf.apply(column) == pytest.approx(0.75)

    def test_value_set_case_sensitive(self):
        lf = ValueSetLF("status", ["Active"], case_sensitive=True)
        assert lf.apply(Column("s", ["active"])) == 0.0

    def test_value_set_requires_values(self):
        with pytest.raises(LabelingFunctionError):
            ValueSetLF("status", [])


class TestExpectationSuiteLF:
    def test_success_fraction(self, salary_column):
        suite = ExpectationSuite(
            name="salary",
            expectations=[
                Expectation("values_between", {"min": 0, "max": 100_000}),
                Expectation("mean_between", {"min": 0, "max": 10}),
            ],
        )
        lf = ExpectationSuiteLF("salary", suite)
        assert lf.apply(salary_column) == pytest.approx(0.5)

    def test_empty_suite_rejected(self):
        with pytest.raises(LabelingFunctionError):
            ExpectationSuiteLF("salary", ExpectationSuite(name="empty"))


class TestSerialization:
    @pytest.mark.parametrize(
        "function",
        [
            ValueRangeLF("salary", 10, 20, name="r"),
            MeanRangeLF("salary", 10, 20),
            HeaderMatchLF("salary", ["income", "pay"]),
            CoOccurrenceLF("salary", ["name", "company"]),
            RegexLF("email", r"\w+@\w+"),
            ValueSetLF("status", ["a", "b"]),
            ExpectationSuiteLF(
                "salary",
                ExpectationSuite("s", [Expectation("values_between", {"min": 1, "max": 2})]),
            ),
        ],
    )
    def test_round_trip(self, function, salary_column):
        restored = labeling_function_from_dict(function.to_dict())
        assert type(restored) is type(function)
        assert restored.target_type == function.target_type
        context = LFContext()
        assert restored.apply(salary_column, context) == pytest.approx(
            function.apply(salary_column, context)
        )

    def test_unknown_kind_rejected(self):
        with pytest.raises(LabelingFunctionError):
            labeling_function_from_dict({"kind": "mystery", "target_type": "x"})


class TestLabelingFunctionStore:
    def test_add_and_query(self, salary_column):
        store = LabelingFunctionStore(
            [
                HeaderMatchLF("salary", ["income"]),
                ValueRangeLF("salary", 0, 100_000),
                HeaderMatchLF("city", ["town"], source="user"),
            ]
        )
        assert len(store) == 3
        assert store.target_types() == ["city", "salary"]
        assert len(store.for_type("salary")) == 2
        assert len(store.from_source("user")) == 1

    def test_score_column_keeps_best_per_type(self, salary_column):
        store = LabelingFunctionStore(
            [
                HeaderMatchLF("salary", ["income"]),           # fires at 1.0
                ValueRangeLF("salary", 0, 10),                 # fires at 0.0
                HeaderMatchLF("city", ["town"]),               # does not fire
            ]
        )
        scores = store.score_column(salary_column)
        assert scores == {"salary": 1.0}

    def test_rejects_non_lf(self):
        with pytest.raises(LabelingFunctionError):
            LabelingFunctionStore().add("not a labeling function")  # type: ignore[arg-type]

    def test_round_trip_dicts(self, salary_column):
        store = LabelingFunctionStore([HeaderMatchLF("salary", ["income"])])
        restored = LabelingFunctionStore.from_dicts(store.to_dicts())
        assert len(restored) == 1
        assert restored.score_column(salary_column) == {"salary": 1.0}
