"""Shared seeded data generators for codec / kernel / transport tests.

One canonical source for the "every supported cell type" table and for
property-style randomized tables and predictions, so ``test_transport.py``,
``test_colblock_kernels.py`` and ``test_net_transport.py`` fuzz the same
value space instead of each maintaining an ad-hoc builder.  Everything is
driven by an explicit ``random.Random`` so failures reproduce from the seed.
"""

from __future__ import annotations

import random

from repro.core.prediction import ColumnPrediction, TablePrediction, TypeScore
from repro.core.table import Table

#: Text pool crossing the kernel fast path's boundaries: ASCII, empty,
#: non-ASCII (accents, CJK, emoji), control bytes, digit-heavy strings.
WORDS = [
    "alpha",
    "Bravo-2",
    "",
    " ",
    "naïve",
    "京都",
    "Ωmega",
    "✓ done",
    "a\x00b\x1fc",
    "$ 50K",
    "1,234.5",
    "-17%",
    "null",
    "x" * 300,
]

#: Value kinds a column can be drawn from.  "mixed" interleaves all of them;
#: "empty" produces a zero-row column.
KINDS = ("str", "int", "float", "bool", "bigint", "none", "mixed", "empty")

_SCALAR_KINDS = ("str", "int", "float", "bool", "bigint", "none")


def random_value(rng: random.Random, kind: str):
    """One cell value of *kind* (``"mixed"`` picks a scalar kind per cell)."""
    if kind == "mixed":
        kind = rng.choice(_SCALAR_KINDS)
    if kind == "str":
        return rng.choice(WORDS)
    if kind == "int":
        return rng.randint(-(1 << 40), 1 << 40)
    if kind == "float":
        return rng.choice(
            [rng.uniform(-1e6, 1e6), float("nan"), float("inf"), -0.0, 1e-300]
        )
    if kind == "bool":
        return rng.random() < 0.5
    if kind == "bigint":
        return rng.choice([1, -1]) * (1 << rng.randint(64, 120))
    if kind == "none":
        return None
    raise ValueError(f"unknown value kind {kind!r}")


def random_column_values(rng: random.Random, n_rows: int, kind: str | None = None) -> list:
    """*n_rows* cells of one *kind* (random when None), with None sprinkled in."""
    if kind is None:
        kind = rng.choice(KINDS)
    if kind == "empty":
        return []
    values = [random_value(rng, kind) for _ in range(n_rows)]
    # Every kind can carry missing values, as real columns do.
    for index in range(len(values)):
        if rng.random() < 0.1:
            values[index] = None
    return values


def random_table(
    rng: random.Random,
    *,
    name: str | None = None,
    max_columns: int = 5,
    max_rows: int = 9,
) -> Table:
    """A random table over the full supported cell-type space.

    Columns draw independent kinds (including zero-row columns only when the
    whole table has zero rows — columns of one table share a row count),
    metadata and semantic types appear probabilistically.
    """
    n_columns = rng.randint(1, max_columns)
    n_rows = rng.choice([0, rng.randint(1, max_rows)])
    columns = {}
    semantic_types = {}
    for index in range(n_columns):
        column_name = f"{rng.choice(['col', 'Col', 'c_'])}{index}{rng.choice(['', ' µ', '-x'])}"
        kind = rng.choice([k for k in KINDS if k != "empty"])
        columns[column_name] = random_column_values(rng, n_rows, kind)
        if rng.random() < 0.3:
            semantic_types[column_name] = rng.choice(["city", "salary", "name", "company"])
    table = Table.from_columns_dict(
        columns,
        name=name if name is not None else f"t{rng.randrange(1 << 30)}",
        semantic_types=semantic_types,
    )
    if rng.random() < 0.5:
        table.metadata["source"] = rng.choice(["fuzz", {"nested": [1, "two", None]}])
    if table.columns and rng.random() < 0.3:
        table.columns[0].metadata["note"] = ["nested", {"ok": True}]
    return table


def random_corpus(seed: int, num_tables: int, **kwargs) -> list:
    """*num_tables* random tables from one seed (independent of call site)."""
    rng = random.Random(seed)
    return [random_table(rng, name=f"t{index}", **kwargs) for index in range(num_tables)]


def mixed_table() -> Table:
    """A table exercising every supported cell type (and edge values).

    The canonical fixed specimen (formerly duplicated per test module);
    :func:`random_table` is its property-style generalization.
    """
    table = Table.from_columns_dict(
        {
            "Income": ["$ 50K", None, "$ 70K"],
            "counts": [1, -2, 3],
            "floats": [1.5, float("nan"), -0.0],
            "flags": [True, False, None],
            "big": [1 << 80, -(1 << 90), 0],
            "text": ["naïve", "", "a\x00b\x1fc"],
        },
        name="mixed",
        semantic_types={"Income": "salary"},
    )
    table.metadata["source"] = "unit"
    table.columns[0].metadata["note"] = ["nested", {"ok": True}]
    return table


def random_prediction(rng: random.Random, table_name: str | None = None) -> TablePrediction:
    """A random (but structurally valid) TablePrediction."""
    steps = ["header_matching", "value_lookup", "table_embedding", "aggregation"]
    types = ["salary", "city", "name", "company", "naïve-τ", ""]

    def scores() -> list:
        return [
            TypeScore(rng.random(), rng.choice(types) or "unknown")
            for _ in range(rng.randint(0, 3))
        ]

    columns = [
        ColumnPrediction(
            column_index=index,
            column_name=rng.choice(["Income", "odd □ name", "城市", f"c{index}", ""]),
            scores=scores(),
            source_step=rng.choice(steps + [""]),
            abstained=rng.random() < 0.3,
            step_scores={
                step: scores() for step in rng.sample(steps, rng.randint(0, len(steps)))
            },
        )
        for index in range(rng.randint(0, 4))
    ]
    return TablePrediction(
        table_name=table_name if table_name is not None else rng.choice(["t", "τ-table", ""]),
        columns=columns,
        step_trace={step: rng.randint(0, 9) for step in rng.sample(steps, rng.randint(0, 3))},
        step_seconds={"header_matching": rng.random()} if rng.random() < 0.5 else {},
    )
