"""Integration tests for the SigmaTyper facade (global + local + DPBD)."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.core.ontology import UNKNOWN_TYPE
from repro.corpus import build_ood_corpus
from repro.evaluation import evaluate_annotator


class TestGlobalAnnotation:
    def test_annotation_covers_every_column(self, pretrained_typer, fig3_table):
        prediction = pretrained_typer.annotate(fig3_table)
        assert len(prediction) == fig3_table.num_columns
        assert prediction.table_name == "fig3"

    def test_reasonable_accuracy_on_held_out_tables(self, pretrained_typer, eval_corpus):
        result = evaluate_annotator(pretrained_typer, eval_corpus, name="global")
        assert result.metrics.accuracy > 0.6
        assert result.metrics.precision > 0.7

    def test_cascade_trace_shows_decreasing_column_counts(self, pretrained_typer, eval_corpus):
        prediction = pretrained_typer.annotate(eval_corpus[0])
        trace = prediction.step_trace
        assert trace["header_matching"] == eval_corpus[0].num_columns
        assert trace.get("value_lookup", 0) <= trace["header_matching"]
        assert trace.get("table_embedding", 0) <= trace.get("value_lookup", trace["header_matching"])

    def test_summary_structure(self, pretrained_typer):
        summary = pretrained_typer.summary()
        assert summary["pipeline_steps"] == ["header_matching", "value_lookup", "table_embedding"]
        assert 0.0 <= summary["tau"] <= 1.0


class TestCustomerLifecycle:
    def test_register_and_duplicate_rejected(self, pretrained_typer):
        pretrained_typer.register_customer("lifecycle-customer")
        with pytest.raises(ConfigurationError):
            pretrained_typer.register_customer("lifecycle-customer")
        with pytest.raises(ConfigurationError):
            pretrained_typer.register_customer("")
        assert "lifecycle-customer" in pretrained_typer.customer_ids

    def test_unknown_customer_rejected(self, pretrained_typer):
        with pytest.raises(ConfigurationError):
            pretrained_typer.customer("never-registered")

    def test_unadapted_customer_matches_global(self, pretrained_typer, fig3_table):
        pretrained_typer.register_customer("fresh-customer")
        global_prediction = pretrained_typer.annotate(fig3_table)
        customer_prediction = pretrained_typer.annotate(fig3_table, customer_id="fresh-customer")
        assert customer_prediction.as_mapping() == global_prediction.as_mapping()


class TestFeedbackAdaptation:
    def test_fig3_relabel_flow(self, pretrained_typer, fig3_table):
        pretrained_typer.register_customer("fig3-customer")
        update = pretrained_typer.give_feedback(
            "fig3-customer", fig3_table, "Income", "salary", previous_type="revenue"
        )
        assert update.target_type == "salary"
        assert len(update.labeling_functions) >= 3
        context = pretrained_typer.customer("fig3-customer")
        assert context.local_model.adapted_types == ["salary"]
        prediction = pretrained_typer.annotate(fig3_table, customer_id="fig3-customer")
        assert prediction.prediction_for("Income").predicted_type == "salary"
        assert prediction.prediction_for("Income").source_step == "global+local"

    def test_feedback_overrides_wrong_global_label(self, pretrained_typer):
        """Label shift (Fig. 1b): a column named like an id that holds phone numbers."""
        from repro.corpus import build_label_shift_corpus

        corpus = build_label_shift_corpus(num_tables=4, seed=99)
        table = corpus[0]
        shifted_column = next(
            column for column in table.columns if "label_shift" in column.metadata
        )
        pretrained_typer.register_customer("shift-customer")
        for _ in range(3):
            pretrained_typer.give_feedback(
                "shift-customer", table, shifted_column.name, shifted_column.semantic_type
            )
        prediction = pretrained_typer.annotate(table, customer_id="shift-customer")
        assert (
            prediction.prediction_for(shifted_column.name).predicted_type
            == shifted_column.semantic_type
        )

    def test_feedback_does_not_leak_across_customers(self, pretrained_typer, fig3_table):
        pretrained_typer.register_customer("tenant-a")
        pretrained_typer.register_customer("tenant-b")
        pretrained_typer.give_feedback("tenant-a", fig3_table, "Income", "salary")
        context_b = pretrained_typer.customer("tenant-b")
        assert not context_b.local_model.has_adaptations()
        prediction_b = pretrained_typer.annotate(fig3_table, customer_id="tenant-b")
        global_prediction = pretrained_typer.annotate(fig3_table)
        assert prediction_b.as_mapping() == global_prediction.as_mapping()

    def test_accept_table_records_implicit_approvals(self, pretrained_typer, fig3_table):
        pretrained_typer.register_customer("approver")
        prediction = pretrained_typer.annotate(fig3_table, customer_id="approver")
        updates = pretrained_typer.accept_table("approver", fig3_table, prediction)
        non_abstained = sum(1 for p in prediction.columns if not p.abstained)
        assert len(updates) == non_abstained
        context = pretrained_typer.customer("approver")
        assert context.feedback_log.summary().get("implicit_approval", 0) == non_abstained


class TestTauAndAbstention:
    def test_set_tau_validation(self, pretrained_typer):
        with pytest.raises(ConfigurationError):
            pretrained_typer.set_tau(1.5)

    def test_high_tau_increases_abstention(self, pretrained_typer, eval_corpus):
        original = pretrained_typer.tau
        try:
            pretrained_typer.set_tau(0.0)
            low_result = evaluate_annotator(pretrained_typer, eval_corpus, name="low-tau")
            pretrained_typer.set_tau(0.95)
            high_result = evaluate_annotator(pretrained_typer, eval_corpus, name="high-tau")
        finally:
            pretrained_typer.set_tau(original)
        assert high_result.metrics.coverage <= low_result.metrics.coverage
        assert high_result.metrics.precision >= low_result.metrics.precision - 0.05

    def test_calibrate_tau_reaches_target(self, pretrained_typer, eval_corpus):
        original = pretrained_typer.tau
        try:
            tau = pretrained_typer.calibrate_tau(eval_corpus, target_precision=0.9)
            assert 0.0 <= tau <= 1.0
            result = evaluate_annotator(pretrained_typer, eval_corpus, name="calibrated")
            assert result.metrics.precision >= 0.85
        finally:
            pretrained_typer.set_tau(original)

    def test_ood_columns_mostly_abstained(self, pretrained_typer):
        ood_corpus = build_ood_corpus(num_tables=5, seed=55)
        abstained = total = 0
        for table in ood_corpus:
            prediction = pretrained_typer.annotate(table)
            for column, column_prediction in zip(table.columns, prediction.columns):
                if not str(column.semantic_type or "").startswith("ood:"):
                    continue
                total += 1
                if column_prediction.abstained or column_prediction.predicted_type == UNKNOWN_TYPE:
                    abstained += 1
        # The system should abstain on a substantial share of OOD columns, and
        # certainly not confidently label all of them.
        assert abstained / total >= 0.3
