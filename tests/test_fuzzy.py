"""Unit tests for fuzzy string similarity."""

from __future__ import annotations

import pytest

from repro.matching.fuzzy import (
    combined_similarity,
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    levenshtein_ratio,
    normalize_header,
    token_set_ratio,
    tokenize_header,
)


class TestNormalizeHeader:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("OrderDate", "order date"),
            ("order_date", "order date"),
            ("ORDER-DATE", "order date"),
            ("  Order   Date ", "order date"),
            ("customerID", "customer id"),
            ("", ""),
        ],
    )
    def test_variants_normalise_identically(self, raw, expected):
        assert normalize_header(raw) == expected

    def test_tokenize_drops_stop_tokens(self):
        assert tokenize_header("date of birth") == ["date", "birth"]


class TestLevenshtein:
    def test_identical(self):
        assert levenshtein_distance("abc", "abc") == 0
        assert levenshtein_ratio("abc", "abc") == 1.0

    def test_known_distances(self):
        assert levenshtein_distance("kitten", "sitting") == 3
        assert levenshtein_distance("", "abc") == 3
        assert levenshtein_distance("abc", "") == 3

    def test_symmetry(self):
        assert levenshtein_distance("salary", "celery") == levenshtein_distance("celery", "salary")

    def test_ratio_bounds(self):
        assert 0.0 <= levenshtein_ratio("abc", "xyz") <= 1.0
        assert levenshtein_ratio("", "") == 1.0


class TestJaro:
    def test_identical(self):
        assert jaro_similarity("salary", "salary") == 1.0

    def test_disjoint(self):
        assert jaro_similarity("abc", "xyz") == 0.0

    def test_empty(self):
        assert jaro_similarity("", "abc") == 0.0

    def test_known_value(self):
        # Classic example: MARTHA vs MARHTA ≈ 0.944.
        assert jaro_similarity("martha", "marhta") == pytest.approx(0.944, abs=1e-3)

    def test_winkler_prefix_boost(self):
        plain = jaro_similarity("salary", "salaries")
        boosted = jaro_winkler_similarity("salary", "salaries")
        assert boosted >= plain


class TestTokenSetRatio:
    def test_word_order_invariance(self):
        assert token_set_ratio("date of birth", "birth date") == 1.0

    def test_partial_overlap(self):
        score = token_set_ratio("customer name", "name")
        assert 0.4 < score < 1.0

    def test_misspelling_tolerance(self):
        assert token_set_ratio("custmer name", "customer name") > 0.8

    def test_disjoint_tokens(self):
        assert token_set_ratio("apple pie", "stock ticker") < 0.3


class TestCombinedSimilarity:
    def test_exact_header_match(self):
        assert combined_similarity("zip_code", "Zip Code") == 1.0

    def test_synonym_like_similarity_is_high(self):
        assert combined_similarity("order date", "OrderDate") == 1.0
        assert combined_similarity("cust_name", "customer name") > 0.6

    def test_unrelated_headers_score_low(self):
        assert combined_similarity("salary", "ip address") < 0.6

    def test_empty_headers(self):
        assert combined_similarity("", "salary") == 0.0
        assert combined_similarity("___", "salary") == 0.0

    def test_bounds(self):
        for a, b in [("a", "b"), ("salary", "sal"), ("price", "prices")]:
            assert 0.0 <= combined_similarity(a, b) <= 1.0
