"""Unit tests for the regular-expression rule library."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.core.table import Column
from repro.lookup.regex_library import DEFAULT_REGEX_RULES, RegexLibrary, RegexRule


@pytest.fixture(scope="module")
def library() -> RegexLibrary:
    return RegexLibrary()


class TestLibraryConstruction:
    def test_default_rules_loaded(self, library):
        assert len(library) == len(DEFAULT_REGEX_RULES)
        assert "email" in library.covered_types
        assert "iban" in library.covered_types

    def test_add_custom_rule(self):
        library = RegexLibrary(rules=[])
        library.add_rule(RegexRule("employee_badge", r"EMP-\d{4}", "badge"))
        assert library.covered_types == ["employee_badge"]

    def test_invalid_regex_rejected(self):
        with pytest.raises(ConfigurationError):
            RegexLibrary(rules=[RegexRule("bad", "([unclosed")])

    def test_rules_for_type(self, library):
        assert len(library.rules_for_type("date")) == 2


class TestValueMatching:
    @pytest.mark.parametrize(
        "value,expected_type",
        [
            ("alice@example.com", "email"),
            ("https://example.com/page", "url"),
            ("192.168.1.10", "ip_address"),
            ("2023-11-02", "date"),
            ("2023-11-02T10:30:00Z", "timestamp"),
            ("123-45-6789", "ssn"),
            ("4111 1111 1111 1111", "credit_card_number"),
            ("NL91ABNA0417164300", "iban"),
            ("978-3-16-148410-0", "isbn"),
            ("42.5%", "percentage"),
            ("$1,200.00", "price"),
            ("#FF00AA", "color"),
            ("v2.3.1", "version"),
            ("INV-2023-0042", "invoice_number"),
            ("MRN123456", "patient_id"),
            ("500 mg", "dosage"),
        ],
    )
    def test_known_formats_detected(self, library, value, expected_type):
        assert expected_type in library.match_value(value)

    def test_plain_word_matches_nothing_specific(self, library):
        assert "email" not in library.match_value("hello")
        assert "iban" not in library.match_value("hello")


class TestColumnMatching:
    def test_fraction_semantics(self, library):
        column = Column("contact", ["a@x.com", "b@y.org", "not an email", "c@z.net"])
        scores = library.match_column(column)
        assert scores["email"] == pytest.approx(0.75)

    def test_weak_patterns_require_high_fraction(self, library):
        # Three-letter uppercase strings match the currency-code pattern, but
        # a column where only half the values look like that must not be
        # reported as currency (min_fraction=0.9 for that rule).
        column = Column("mixed", ["USD", "EUR", "hello world", "something else"])
        scores = library.match_column(column)
        assert "currency" not in scores

    def test_strong_fraction_reports_weak_pattern(self, library):
        column = Column("ccy", ["USD", "EUR", "GBP", "JPY"])
        assert "currency" in library.match_column(column)

    def test_empty_column(self, library):
        assert library.match_column(Column("x", [])) == {}

    def test_null_only_column(self, library):
        assert library.match_column(Column("x", [None, "", "N/A"])) == {}
