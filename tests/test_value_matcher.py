"""Unit tests for the value-lookup pipeline step."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.core.table import Column
from repro.lookup.knowledge_base import KnowledgeBase
from repro.lookup.labeling_functions import HeaderMatchLF, LabelingFunctionStore, ValueRangeLF
from repro.lookup.regex_library import RegexLibrary
from repro.lookup.value_matcher import ValueLookupConfig, ValueLookupStep


@pytest.fixture(scope="module")
def step() -> ValueLookupStep:
    return ValueLookupStep()


class TestConfig:
    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            ValueLookupConfig(sample_size=0).validate()
        with pytest.raises(ConfigurationError):
            ValueLookupConfig(min_confidence=2.0).validate()
        with pytest.raises(ConfigurationError):
            ValueLookupConfig(top_k=0).validate()


class TestValueLookup:
    def test_regex_detects_emails(self, step):
        column = Column("contact", ["a@x.com", "b@y.org", "c@z.io"])
        scores = step.predict_column(column)
        assert scores[0].type_name == "email"
        assert scores[0].confidence == 1.0

    def test_knowledge_base_detects_cities(self, step):
        column = Column("location", ["Amsterdam", "Paris", "Berlin", "Tokyo"])
        scores = step.predict_column(column)
        assert any(score.type_name == "city" for score in scores)

    def test_uninformative_values_yield_nothing(self, step):
        column = Column("x", ["lorem ipsum dolor", "random words here", "more free text"])
        scores = step.predict_column(column)
        assert all(score.confidence < 0.9 for score in scores)

    def test_min_confidence_filters(self):
        step = ValueLookupStep(config=ValueLookupConfig(min_confidence=0.9))
        column = Column("mixed", ["a@x.com", "not email", "also not", "nope"])
        assert step.predict_column(column) == []

    def test_local_labeling_functions_take_part(self):
        store = LabelingFunctionStore(
            [HeaderMatchLF("salary", ["income"]), ValueRangeLF("salary", 40_000, 80_000)]
        )
        step = ValueLookupStep(labeling_functions=store)
        column = Column("income", ["50000", "60000", "70000"])
        scores = step.predict_column(column)
        assert scores[0].type_name == "salary"
        assert scores[0].confidence == 1.0

    def test_co_occurrence_context_passed(self, fig3_table):
        # Labeling functions that need the table receive it via LFContext.
        from repro.lookup.labeling_functions import CoOccurrenceLF

        store = LabelingFunctionStore([CoOccurrenceLF("salary", ["company", "name"])])
        step = ValueLookupStep(
            knowledge_base=KnowledgeBase(), regex_library=RegexLibrary(rules=[]), labeling_functions=store
        )
        results = step.predict_columns(fig3_table, [1])
        assert results[1] and results[1][0].type_name == "salary"

    def test_top_k_limit(self):
        step = ValueLookupStep(config=ValueLookupConfig(top_k=1, min_confidence=0.1))
        column = Column("ccy", ["USD", "EUR", "GBP", "CHF"])
        assert len(step.predict_column(column)) <= 1

    def test_predict_columns_covers_requested_indices(self, step, fig3_table):
        results = step.predict_columns(fig3_table, [0, 3])
        assert set(results) == {0, 3}

    def test_predict_columns_default_all(self, step, fig3_table):
        assert set(step.predict_columns(fig3_table)) == {0, 1, 2, 3}

    def test_empty_column(self, step):
        assert step.predict_column(Column("empty", [None, "", None])) == []
