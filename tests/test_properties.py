"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import string

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.aggregation import calibrate_tau, soft_majority_vote
from repro.core.datatypes import DataType, infer_column_type, parse_number
from repro.core.prediction import TypeScore, merge_scores
from repro.core.table import Column, Table
from repro.evaluation.metrics import PredictionRecord, evaluate_records
from repro.matching.embeddings import SubwordEmbedder
from repro.matching.fuzzy import (
    combined_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    levenshtein_ratio,
    token_set_ratio,
)
from repro.nn.functional import softmax
from repro.profiler.statistics import character_template, profile_column

# Text strategies kept printable so header normalisation is meaningful.
header_text = st.text(alphabet=string.ascii_letters + string.digits + " _-", min_size=0, max_size=24)
cell_text = st.one_of(
    st.none(),
    st.text(alphabet=string.printable.strip(), min_size=0, max_size=20),
    st.integers(-10**9, 10**9).map(str),
    st.floats(allow_nan=False, allow_infinity=False, width=32).map(lambda x: f"{x:.4f}"),
)


class TestStringSimilarityProperties:
    @given(header_text, header_text)
    @settings(max_examples=150, deadline=None)
    def test_similarities_bounded_and_symmetric(self, first, second):
        for function in (combined_similarity, token_set_ratio, jaro_winkler_similarity, levenshtein_ratio):
            forward = function(first, second)
            backward = function(second, first)
            assert 0.0 <= forward <= 1.0
            assert forward == pytest.approx(backward, abs=1e-9)

    @given(header_text)
    @settings(max_examples=100, deadline=None)
    def test_self_similarity_is_maximal(self, text):
        assert levenshtein_distance(text, text) == 0
        if text.strip(" _-"):
            assert combined_similarity(text, text) == 1.0

    @given(header_text, header_text, header_text)
    @settings(max_examples=80, deadline=None)
    def test_levenshtein_triangle_inequality(self, a, b, c):
        assert levenshtein_distance(a, c) <= levenshtein_distance(a, b) + levenshtein_distance(b, c)


class TestEmbeddingProperties:
    @given(header_text)
    @settings(max_examples=60, deadline=None)
    def test_embeddings_are_unit_norm_or_zero(self, text):
        embedder = SubwordEmbedder(ngram_dim=32)
        vector = embedder.embed_text(text)
        norm = np.linalg.norm(vector)
        assert vector.shape == (32,)
        assert norm == pytest.approx(0.0, abs=1e-12) or norm == pytest.approx(1.0, rel=1e-6)

    @given(st.lists(st.lists(header_text, min_size=1, max_size=4), min_size=0, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_fit_never_crashes_and_dim_is_consistent(self, sentences):
        embedder = SubwordEmbedder(ngram_dim=16, context_dim=8)
        embedder.fit(sentences)
        assert embedder.embed_text("anything").shape == (embedder.dim,)


class TestColumnAndProfileProperties:
    @given(st.lists(cell_text, max_size=40))
    @settings(max_examples=80, deadline=None)
    def test_column_invariants(self, values):
        column = Column("col", values)
        assert 0.0 <= column.null_fraction() <= 1.0
        assert 0.0 <= column.unique_fraction() <= 1.0
        assert len(column.non_null_values()) <= len(column)
        assert column.data_type in DataType

    @given(st.lists(cell_text, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_profile_consistency(self, values):
        column = Column("col", values)
        profile = profile_column(column)
        assert profile.row_count == len(values)
        assert 0 <= profile.null_count <= profile.row_count
        assert profile.distinct_count <= profile.row_count
        if profile.is_numeric:
            assert profile.minimum <= profile.median <= profile.maximum

    @given(st.text(max_size=30))
    @settings(max_examples=80, deadline=None)
    def test_character_template_stability(self, value):
        template = character_template(value)
        # Applying the template transform to a value twice is idempotent with
        # respect to digit/letter classes: digits never survive to the output.
        assert all(not ch.isdigit() or ch == "9" for ch in template)

    @given(st.lists(st.integers(-10**6, 10**6), min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_numeric_columns_parse_consistently(self, numbers):
        column = Column("n", [str(value) for value in numbers])
        parsed = column.numeric_values()
        assert parsed == [float(value) for value in numbers]
        assert infer_column_type(column.values) in (DataType.INTEGER, DataType.FLOAT)


class TestParseNumberProperties:
    @given(st.floats(allow_nan=False, allow_infinity=False, min_value=-1e12, max_value=1e12))
    @settings(max_examples=100, deadline=None)
    def test_round_trip_plain_floats(self, value):
        parsed = parse_number(f"{value:.6f}")
        assert parsed == pytest.approx(value, rel=1e-6, abs=1e-6)

    @given(st.integers(-10**15, 10**15))
    @settings(max_examples=100, deadline=None)
    def test_round_trip_integers_with_separators(self, value):
        parsed = parse_number(f"{value:,}")
        assert parsed == float(value)


class TestAggregationProperties:
    type_names = st.sampled_from(["city", "salary", "date", "email", "country"])
    score_lists = st.lists(
        st.tuples(type_names, st.floats(0.0, 1.0)).map(lambda t: TypeScore(t[1], t[0])),
        max_size=5,
    )

    @given(st.dictionaries(st.sampled_from(["s1", "s2", "s3"]), score_lists, max_size=3))
    @settings(max_examples=100, deadline=None)
    def test_soft_majority_vote_bounds_and_order(self, step_scores):
        combined = soft_majority_vote(step_scores)
        confidences = [score.confidence for score in combined]
        assert all(0.0 <= confidence <= 1.0 for confidence in confidences)
        assert confidences == sorted(confidences, reverse=True)
        # No type appears twice.
        names = [score.type_name for score in combined]
        assert len(names) == len(set(names))

    @given(st.lists(score_lists, max_size=4))
    @settings(max_examples=100, deadline=None)
    def test_merge_scores_keeps_max(self, lists):
        merged = merge_scores(lists)
        for score in merged:
            observed = [s.confidence for scores in lists for s in scores if s.type_name == score.type_name]
            assert score.confidence == pytest.approx(max(observed))

    @given(
        st.lists(st.tuples(st.floats(0.0, 1.0), st.booleans()), min_size=1, max_size=60),
        st.floats(0.5, 1.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_calibrate_tau_meets_target_when_possible(self, pairs, target):
        grid_size = 101
        tau = calibrate_tau(pairs, target_precision=target, grid_size=grid_size)
        assert 0.0 <= tau <= 1.0

        def precision_at(threshold):
            retained = [correct for confidence, correct in pairs if confidence >= threshold]
            return (sum(retained) / len(retained)) if retained else None

        achieved = precision_at(tau)
        # The calibration searches the same fixed grid; it must reach the
        # target whenever *some* grid threshold does.
        achievable_on_grid = any(
            (precision_at(i / (grid_size - 1)) or 0.0) >= target for i in range(grid_size)
        )
        if achievable_on_grid:
            assert achieved is not None and achieved >= target - 1e-9


class TestSoftmaxProperties:
    @given(
        st.lists(
            st.lists(st.floats(-50, 50), min_size=2, max_size=6),
            min_size=1,
            max_size=8,
        ).filter(lambda rows: len({len(row) for row in rows}) == 1)
    )
    @settings(max_examples=80, deadline=None)
    def test_softmax_rows_are_distributions(self, rows):
        probabilities = softmax(np.array(rows, dtype=np.float64))
        assert np.all(probabilities >= 0)
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0, rtol=1e-9)


class TestEvaluationProperties:
    records = st.lists(
        st.builds(
            PredictionRecord,
            gold_type=st.sampled_from(["city", "salary", "date"]),
            predicted_type=st.sampled_from(["city", "salary", "date", "unknown"]),
            confidence=st.floats(0.0, 1.0),
            abstained=st.booleans(),
        ),
        max_size=50,
    )

    @given(records)
    @settings(max_examples=100, deadline=None)
    def test_metric_bounds(self, records):
        metrics = evaluate_records(records)
        for value in (metrics.accuracy, metrics.precision, metrics.coverage, metrics.macro_f1, metrics.weighted_f1):
            assert 0.0 <= value <= 1.0
        assert metrics.correct <= metrics.attempted <= metrics.total
        # Accuracy can never exceed coverage (you cannot be right about a
        # column you refused to label).
        assert metrics.accuracy <= metrics.coverage + 1e-12


class TestTableProperties:
    @given(
        st.integers(1, 6),
        st.integers(0, 8),
        st.integers(0, 10**6),
    )
    @settings(max_examples=50, deadline=None)
    def test_table_row_column_round_trip(self, num_columns, num_rows, seed):
        import random

        rng = random.Random(seed)
        header = [f"col_{i}" for i in range(num_columns)]
        rows = [[str(rng.randint(0, 99)) for _ in range(num_columns)] for _ in range(num_rows)]
        table = Table.from_rows(header, rows)
        assert table.shape == (num_rows, num_columns)
        round_tripped_header, round_tripped_rows = table.to_rows()
        assert round_tripped_header == header
        assert round_tripped_rows == rows
