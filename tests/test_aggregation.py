"""Unit tests for score aggregation and τ calibration."""

from __future__ import annotations

import pytest

from repro.core.aggregation import (
    Aggregator,
    calibrate_tau,
    hard_majority_vote,
    max_confidence_vote,
    soft_majority_vote,
)
from repro.core.errors import ConfigurationError
from repro.core.prediction import TypeScore


def scores(**kwargs):
    return [TypeScore(confidence=v, type_name=k) for k, v in kwargs.items()]


class TestSoftMajorityVote:
    def test_agreement_beats_single_step(self):
        combined = soft_majority_vote(
            {
                "header_matching": scores(city=0.8),
                "value_lookup": scores(city=0.7, country=0.9),
            }
        )
        # City is endorsed by both steps (avg 0.75), country by one (avg 0.45).
        assert combined[0].type_name == "city"
        assert combined[0].confidence == pytest.approx(0.75)
        by_type = {s.type_name: s.confidence for s in combined}
        assert by_type["country"] == pytest.approx(0.45)

    def test_step_weights(self):
        combined = soft_majority_vote(
            {"a": scores(x=1.0), "b": scores(y=1.0)},
            step_weights={"a": 3.0, "b": 1.0},
        )
        by_type = {s.type_name: s.confidence for s in combined}
        assert by_type["x"] == pytest.approx(0.75)
        assert by_type["y"] == pytest.approx(0.25)

    def test_empty_input(self):
        assert soft_majority_vote({}) == []

    def test_steps_with_no_scores_still_count_in_denominator(self):
        combined = soft_majority_vote({"a": scores(x=1.0), "b": []})
        assert combined[0].confidence == pytest.approx(0.5)


class TestHardMajorityVote:
    def test_vote_share(self):
        combined = hard_majority_vote(
            {
                "a": scores(city=0.9),
                "b": scores(city=0.6, country=0.5),
                "c": scores(country=0.95),
            }
        )
        by_type = {s.type_name: s.confidence for s in combined}
        assert by_type["city"] == pytest.approx(2 / 3)
        assert by_type["country"] == pytest.approx(1 / 3)

    def test_tie_broken_by_raw_confidence(self):
        combined = hard_majority_vote({"a": scores(x=0.95), "b": scores(y=0.55)})
        assert combined[0].type_name == "x"

    def test_empty(self):
        assert hard_majority_vote({}) == []


class TestMaxConfidenceVote:
    def test_maximum_kept(self):
        combined = max_confidence_vote({"a": scores(x=0.4), "b": scores(x=0.9, y=0.3)})
        by_type = {s.type_name: s.confidence for s in combined}
        assert by_type["x"] == 0.9
        assert by_type["y"] == 0.3


class TestAggregator:
    def test_unknown_method_rejected(self):
        with pytest.raises(ConfigurationError):
            Aggregator(method="median")

    @pytest.mark.parametrize("method", ["soft_majority", "hard_majority", "max"])
    def test_all_methods_run(self, method):
        aggregator = Aggregator(method=method)
        combined = aggregator.combine({"a": scores(x=0.8), "b": scores(x=0.6, y=0.4)})
        assert combined[0].type_name == "x"


class TestCalibrateTau:
    def test_reaches_target_precision(self):
        # Correct predictions have high confidence, wrong ones low confidence.
        pairs = [(0.9, True)] * 80 + [(0.95, True)] * 10 + [(0.3, False)] * 30 + [(0.7, False)] * 5
        tau = calibrate_tau(pairs, target_precision=0.95)
        retained = [correct for confidence, correct in pairs if confidence >= tau]
        precision = sum(retained) / len(retained)
        assert precision >= 0.95
        assert 0.0 < tau <= 1.0

    def test_prefers_lowest_tau_that_meets_target(self):
        pairs = [(0.9, True), (0.8, True), (0.2, False)]
        tau = calibrate_tau(pairs, target_precision=1.0)
        assert tau <= 0.8

    def test_unreachable_target_returns_best_effort(self):
        pairs = [(0.9, False), (0.8, False)]
        tau = calibrate_tau(pairs, target_precision=0.99)
        assert 0.0 <= tau <= 1.0

    def test_empty_input(self):
        assert calibrate_tau([], target_precision=0.9) == 0.0

    def test_invalid_target_rejected(self):
        with pytest.raises(ConfigurationError):
            calibrate_tau([(0.5, True)], target_precision=0.0)
