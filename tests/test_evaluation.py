"""Unit tests for evaluation metrics, the harness, and report rendering."""

from __future__ import annotations

import pytest

from repro.baselines import RegexDictionaryBaseline
from repro.core.ontology import UNKNOWN_TYPE
from repro.corpus import GitTablesConfig, GitTablesGenerator
from repro.evaluation import (
    PredictionRecord,
    evaluate_annotator,
    evaluate_records,
    format_kv,
    format_table,
    precision_coverage_curve,
)


def record(gold, predicted, confidence=0.9, abstained=False):
    return PredictionRecord(
        gold_type=gold, predicted_type=predicted, confidence=confidence, abstained=abstained
    )


class TestMetrics:
    def test_perfect_predictions(self):
        metrics = evaluate_records([record("city", "city"), record("salary", "salary")])
        assert metrics.accuracy == 1.0
        assert metrics.precision == 1.0
        assert metrics.coverage == 1.0
        assert metrics.macro_f1 == 1.0

    def test_abstention_costs_coverage_not_precision(self):
        metrics = evaluate_records(
            [
                record("city", "city"),
                record("salary", UNKNOWN_TYPE, confidence=0.0, abstained=True),
            ]
        )
        assert metrics.coverage == 0.5
        assert metrics.precision == 1.0
        assert metrics.accuracy == 0.5

    def test_wrong_prediction_hits_both_types(self):
        metrics = evaluate_records([record("city", "country")])
        assert metrics.precision == 0.0
        assert metrics.per_type["city"].false_negatives == 1
        assert metrics.per_type["country"].false_positives == 1

    def test_macro_vs_weighted_f1(self):
        # 9 easy columns of one type, 1 failing column of a rare type.
        records = [record("city", "city") for _ in range(9)] + [record("iban", "email")]
        metrics = evaluate_records(records)
        assert metrics.weighted_f1 > metrics.macro_f1

    def test_per_type_precision_recall(self):
        metrics = evaluate_records(
            [record("city", "city"), record("city", "city"), record("country", "city")]
        )
        city = metrics.per_type["city"]
        assert city.precision == pytest.approx(2 / 3)
        assert city.recall == 1.0
        assert 0 < city.f1 < 1

    def test_worst_types(self):
        records = [record("city", "city"), record("iban", "email"), record("salary", "salary")]
        metrics = evaluate_records(records)
        worst = metrics.worst_types(1)
        assert worst[0].type_name == "iban"

    def test_empty_records(self):
        metrics = evaluate_records([])
        assert metrics.accuracy == 0.0
        assert metrics.coverage == 0.0
        assert metrics.summary()["columns"] == 0.0

    def test_summary_keys(self):
        summary = evaluate_records([record("a", "a")]).summary()
        assert set(summary) >= {"coverage", "precision", "accuracy", "macro_f1", "weighted_f1"}


class TestHarness:
    @pytest.fixture(scope="class")
    def corpus(self):
        return GitTablesGenerator(GitTablesConfig(num_tables=5, seed=61)).generate_corpus()

    def test_evaluate_baseline_annotator(self, corpus):
        result = evaluate_annotator(RegexDictionaryBaseline(), corpus, name="regex")
        assert result.name == "regex"
        assert result.tables == 5
        assert 0.0 <= result.metrics.coverage <= 1.0
        assert result.metrics.total > 0
        assert result.summary()["system"] == "regex"

    def test_callable_annotator_accepted(self, corpus):
        baseline = RegexDictionaryBaseline()
        result = evaluate_annotator(lambda table: baseline.annotate(table), corpus)
        assert result.metrics.total > 0

    def test_pipeline_traces_accumulated(self, pretrained_typer, corpus):
        result = evaluate_annotator(pretrained_typer, corpus, name="sigmatyper")
        assert result.step_trace["header_matching"] == corpus.num_columns
        assert set(result.step_seconds) == set(result.step_trace)

    def test_ood_gold_handling(self, pretrained_typer):
        from repro.corpus import build_ood_corpus

        ood = build_ood_corpus(num_tables=3, seed=13)
        scored = evaluate_annotator(pretrained_typer, ood, name="with-ood")
        skipped = evaluate_annotator(pretrained_typer, ood, name="skip-ood", skip_ood_gold=True)
        assert scored.metrics.total > skipped.metrics.total


class TestPrecisionCoverageCurve:
    def test_monotone_coverage(self):
        records = [
            record("city", "city", confidence=0.9),
            record("salary", "salary", confidence=0.7),
            record("iban", "email", confidence=0.3),
            record("date", "date", confidence=0.5),
        ]
        curve = precision_coverage_curve(records, taus=[0.0, 0.4, 0.8, 1.0])
        coverages = [point["coverage"] for point in curve]
        assert coverages == sorted(coverages, reverse=True)
        # Precision improves as the low-confidence mistake is thresholded out.
        assert curve[2]["precision"] >= curve[0]["precision"]

    def test_default_tau_grid(self):
        curve = precision_coverage_curve([record("a", "a")])
        assert len(curve) == 21


class TestReports:
    def test_format_table_alignment(self):
        rows = [{"system": "a", "f1": 0.5}, {"system": "bbbb", "f1": 0.25}]
        text = format_table(rows, title="results")
        lines = text.splitlines()
        assert lines[0] == "results"
        assert "system" in lines[1] and "f1" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])

    def test_format_table_missing_cells(self):
        text = format_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert "b" in text

    def test_format_kv(self):
        text = format_kv({"precision": 0.91, "coverage": 0.8}, title="summary")
        assert text.startswith("summary")
        assert "precision" in text
