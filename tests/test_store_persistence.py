"""Persistent profile-store tier: recovery, durability, and parity.

The disk tier's contract extends the serving layer's parity rule: a
namespace served from disk must be the pickle round-trip of exactly what the
cold computation produces, so a killed-and-restarted process reopening the
same store directory serves warm state with **bit-identical predictions**.
These tests pin that contract plus the failure modes a log-structured store
must absorb — torn segment tails, corrupt payloads, eviction racing the
write-behind flusher — and the bounds of the adaptive batching controller.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.core.errors import ConfigurationError
from repro.core.table import Column, get_active_profile_store
from repro.embedding_model import ColumnFeaturizer
from repro.embedding_model.features import FeaturizerConfig
from repro.serving import AdaptiveBatchingConfig, AnnotationService, PersistentProfileStore
from repro.serving.service import _AimdController


def _comparable(predictions):
    """Everything except wall-clock timings (bit-exact float comparison)."""
    return [(p.table_name, p.step_trace, p.columns) for p in predictions]


def _fresh(tables):
    """Copies with cold per-column caches, as a new request would carry."""
    return [table.copy() for table in tables]


def _segments(directory):
    return sorted(directory.glob("segment-*.seg"))


@pytest.fixture(autouse=True)
def _no_leaked_store():
    yield
    assert get_active_profile_store() is None


@pytest.fixture()
def mixed_tables(eval_corpus, fig3_table):
    return [table.copy() for table in eval_corpus] + [fig3_table.copy()]


# ----------------------------------------------------------------- acceptance
class TestRestartWarmth:
    def test_killed_and_restarted_process_serves_warm_state(
        self, pretrained_typer, mixed_tables, tmp_path
    ):
        """The PR's acceptance bar: reopen the same directory after a "kill"
        (no clean close) and serve >= 90% of lookups warm, bit-identically."""
        baseline = pretrained_typer.annotate_corpus(_fresh(mixed_tables))

        store = PersistentProfileStore(tmp_path, max_columns=4096, flush_interval=0)
        with store.activated():
            first_run = pretrained_typer.annotate_corpus(_fresh(mixed_tables))
            store.flush()  # what the write-behind flusher does periodically
        assert _comparable(first_run) == _comparable(baseline)
        flushed_entries = store.disk_entries
        assert flushed_entries > 0
        # Simulate SIGKILL: the store object is abandoned without close().

        restarted = PersistentProfileStore(tmp_path, max_columns=4096, flush_interval=0)
        assert restarted.recovered_entries == flushed_entries
        with restarted.activated():
            second_run = pretrained_typer.annotate_corpus(_fresh(mixed_tables))
        restarted.close()
        assert _comparable(second_run) == _comparable(baseline)
        assert restarted.disk_hits > 0
        assert restarted.hit_rate >= 0.9, restarted.stats()

    def test_fresh_featurizer_reuses_persisted_feature_vectors(self, tmp_path):
        """The memoized feature prefix must be reusable by a *different*
        featurizer instance with the same learned state — the restart case."""
        shared_embedder_config = FeaturizerConfig(include_table_context=False)
        first = ColumnFeaturizer(config=shared_embedder_config)
        second = ColumnFeaturizer(embedder=first.embedder, config=shared_embedder_config)
        assert first.cache_token() == second.cache_token()

        column = Column("Income", ["$ 50K", "$ 60K", "$ 70K"])
        store = PersistentProfileStore(tmp_path, flush_interval=0)
        with store.activated():
            expected = first.extract(column)
            store.flush()
        store.close()

        restarted = PersistentProfileStore(tmp_path, flush_interval=0)
        with restarted.activated():
            served = second.extract(Column("Income", ["$ 50K", "$ 60K", "$ 70K"]))
        restarted.close()
        assert restarted.disk_hits > 0
        assert served.tobytes() == expected.tobytes()

    def test_distinct_embedders_never_share_tokens(self):
        first = ColumnFeaturizer()
        second = ColumnFeaturizer()
        second.embedder.fit([["alpha", "beta"], ["beta", "gamma"]])
        assert first.cache_token() != second.cache_token()

    def test_refit_with_same_vocab_size_changes_the_token(self):
        """An in-place refit must invalidate the token even when the new
        vocabulary happens to have the same size as the old one."""
        featurizer = ColumnFeaturizer()
        featurizer.embedder.fit([["alpha", "beta"], ["beta", "gamma"]])
        before = featurizer.cache_token()
        featurizer.embedder.fit([["alpha", "gamma"], ["alpha", "beta"]])
        assert len(featurizer.embedder.vocabulary) == 3  # same size, new weights
        assert featurizer.cache_token() != before


# ------------------------------------------------------------------- recovery
class TestCorruptionTolerantRecovery:
    def _filled_store(self, tmp_path, count=6):
        store = PersistentProfileStore(tmp_path, flush_interval=0)
        columns = [Column(f"c{i}", [f"v{i}-{j}" for j in range(4)]) for i in range(count)]
        with store.activated():
            for column in columns:
                column.value_counts()
            store.flush()
        store.close()
        return columns

    def test_truncated_segment_recovers_prefix(self, tmp_path):
        self._filled_store(tmp_path)
        (segment,) = _segments(tmp_path)
        data = segment.read_bytes()
        segment.write_bytes(data[:-10])  # torn tail, as a crash mid-write leaves

        store = PersistentProfileStore(tmp_path, flush_interval=0)
        assert store.corrupt_records_skipped == 1
        assert store.recovered_entries == 5  # everything before the torn record
        # The store keeps working: the lost column is simply recomputed.
        with store.activated():
            lost = Column("c5", [f"v5-{j}" for j in range(4)])
            assert lost.value_counts() == {f"v5-{j}": 1 for j in range(4)}
        store.close()

    def test_corrupt_payload_stops_that_segment_only(self, tmp_path):
        self._filled_store(tmp_path, count=4)
        (segment,) = _segments(tmp_path)
        data = bytearray(segment.read_bytes())
        # Flip a byte inside the *last* record's payload (crc catches it).
        data[-3] ^= 0xFF
        segment.write_bytes(bytes(data))

        store = PersistentProfileStore(tmp_path, flush_interval=0)
        assert store.corrupt_records_skipped == 1
        assert store.recovered_entries == 3
        store.close()

    def test_unreadable_magic_skips_whole_file(self, tmp_path):
        self._filled_store(tmp_path, count=2)
        bogus = tmp_path / "segment-99999999-1.seg"
        bogus.write_bytes(b"not a segment at all")
        store = PersistentProfileStore(tmp_path, flush_interval=0)
        assert store.recovered_entries == 2
        assert store.corrupt_records_skipped == 1
        store.close()

    def test_clear_removes_disk_state(self, tmp_path):
        self._filled_store(tmp_path, count=3)
        store = PersistentProfileStore(tmp_path, flush_interval=0)
        assert store.recovered_entries == 3
        store.clear()
        assert store.disk_entries == 0
        assert not _segments(tmp_path)
        store.close()
        reopened = PersistentProfileStore(tmp_path, flush_interval=0)
        assert reopened.recovered_entries == 0
        reopened.close()


# ----------------------------------------------------------------- durability
class TestWriteBehindAndEviction:
    def test_invalidate_cache_reaches_the_disk_tier(self, tmp_path):
        store = PersistentProfileStore(tmp_path, flush_interval=0)
        with store.activated():
            column = Column("city", ["Berlin", "Paris"])
            column.value_counts()
            stale_hash = column.content_hash()
            store.flush()
            assert stale_hash in store
            column.values.append("Oslo")
            column.invalidate_cache()
            assert stale_hash not in store
        assert store.tombstones == 1
        store.flush()
        store.close()
        # The tombstone survives the restart: the stale entry is unrecoverable.
        reopened = PersistentProfileStore(tmp_path, flush_interval=0)
        assert stale_hash not in reopened
        reopened.close()

    def test_eviction_flushes_dirty_entries_before_forgetting(self, tmp_path):
        store = PersistentProfileStore(tmp_path, max_columns=2, flush_interval=0)
        with store.activated():
            columns = [Column(f"c{i}", [str(i), str(i + 1)]) for i in range(6)]
            for column in columns:
                column.value_counts()
        assert store.evictions == 4
        # Every evicted namespace went to disk, not into the void.
        assert store.disk_entries >= 4
        store.close()
        reopened = PersistentProfileStore(tmp_path, max_columns=16, flush_interval=0)
        with reopened.activated():
            for i, column in enumerate(columns):
                again = Column(f"c{i}", [str(i), str(i + 1)])
                assert again.value_counts() == {str(i): 1, str(i + 1): 1}
        assert reopened.disk_hits == 6
        reopened.close()

    def test_concurrent_fills_flushes_and_evictions(self, tmp_path):
        """The background flusher, LRU eviction, and concurrent namespace
        fills interleave without corrupting the log or the derived state."""
        store = PersistentProfileStore(tmp_path, max_columns=8, flush_interval=0.002)
        errors = []

        def worker(worker_id: int) -> None:
            try:
                for i in range(40):
                    column = Column(f"w{worker_id}-c{i}", [f"{worker_id}", f"{i}", "x"])
                    column.value_counts()
                    column.text_values()
            except Exception as exc:  # noqa: BLE001 - surfaced to the assertion
                errors.append(exc)

        with store.activated():
            threads = [threading.Thread(target=worker, args=(w,)) for w in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            store.flush()
        store.close()
        assert not errors
        # Recovery sees one intact record per distinct column (no torn log).
        reopened = PersistentProfileStore(tmp_path, flush_interval=0)
        assert reopened.corrupt_records_skipped == 0
        assert reopened.recovered_entries == 160
        with reopened.activated():
            probe = Column("w3-c7", ["3", "7", "x"])
            assert probe.value_counts() == {"3": 1, "7": 1, "x": 1}
        assert reopened.disk_hits == 1
        reopened.close()

    def test_compaction_drops_dead_bytes_and_preserves_live_state(self, tmp_path):
        store = PersistentProfileStore(tmp_path, flush_interval=0)
        with store.activated():
            column = Column("city", ["Berlin", "Paris"])
            column.non_null_values()
            store.flush()
            # Growing the namespace re-persists it: the old record goes dead.
            column.value_counts()
            store.flush()
            doomed = Column("tmp", ["x"])
            doomed.value_counts()
            store.flush()
            doomed.invalidate_cache()
        dead_before = store.dead_bytes
        assert dead_before > 0
        store.compact()
        assert store.dead_bytes < dead_before
        assert store.compactions >= 1
        store.close()
        reopened = PersistentProfileStore(tmp_path, flush_interval=0)
        assert reopened.recovered_entries == 1
        with reopened.activated():
            again = Column("city", ["Berlin", "Paris"])
            assert again.value_counts() == {"Berlin": 1, "Paris": 1}
        reopened.close()

    def test_auto_compaction_triggers_on_dead_ratio(self, tmp_path):
        store = PersistentProfileStore(
            tmp_path, flush_interval=0, compaction_dead_ratio=0.3
        )
        with store.activated():
            column = Column("n", ["1", "2", "3"])
            # Each extra derived view makes the namespace dirty again, so each
            # flush appends a superseding record and deadens the previous one.
            column.non_null_values()
            store.flush()
            column.text_values()
            store.flush()
            column.value_counts()
            store.flush()
            column.numeric_values()
            store.flush()
        assert store.compactions >= 1
        store.close()

    def test_closed_store_degrades_to_memory_lru(self, tmp_path):
        store = PersistentProfileStore(tmp_path, flush_interval=0)
        store.close()
        with store.activated():
            column = Column("city", ["Berlin"])
            assert column.value_counts() == {"Berlin": 1}
        assert store.disk_entries == 0
        store.close()  # idempotent

    def test_invalid_configuration(self, tmp_path):
        with pytest.raises(ConfigurationError):
            PersistentProfileStore(tmp_path, flush_interval=-1)
        with pytest.raises(ConfigurationError):
            PersistentProfileStore(tmp_path, segment_max_bytes=0)
        with pytest.raises(ConfigurationError):
            PersistentProfileStore(tmp_path, compaction_dead_ratio=0.0)
        with pytest.raises(ConfigurationError):
            PersistentProfileStore(tmp_path, max_columns=0)

    def test_compaction_never_deletes_a_siblings_segments(self, tmp_path):
        """Compaction may only retire segments this store knows about; a
        concurrent writer's newer segments (e.g. a forked worker's) survive."""
        ours = PersistentProfileStore(tmp_path, flush_interval=0)
        with ours.activated():
            column = Column("ours", ["a", "b"])
            column.non_null_values()
            ours.flush()
            column.value_counts()  # dirty again -> superseding record -> dead bytes
            ours.flush()

        # A sibling process appends its own segment after our open.
        sibling = PersistentProfileStore(tmp_path, flush_interval=0)
        with sibling.activated():
            Column("theirs", ["x", "y"]).value_counts()
            sibling.flush()
        sibling_segment = sibling._index[  # noqa: SLF001
            Column("theirs", ["x", "y"]).content_hash()
        ][0]

        ours.compact()
        assert sibling_segment.exists(), "compaction destroyed a sibling's segment"
        ours.close()
        sibling.close()
        merged = PersistentProfileStore(tmp_path, flush_interval=0)
        with merged.activated():
            assert Column("ours", ["a", "b"]).value_counts() == {"a": 1, "b": 1}
            assert Column("theirs", ["x", "y"]).value_counts() == {"x": 1, "y": 1}
        assert merged.disk_hits == 2
        merged.close()

    def test_segment_rollover_splits_files(self, tmp_path):
        store = PersistentProfileStore(tmp_path, flush_interval=0, segment_max_bytes=512)
        with store.activated():
            for i in range(8):
                Column(f"c{i}", [f"value-{i}-{j}" for j in range(10)]).value_counts()
            store.flush()
        assert len(_segments(tmp_path)) > 1
        store.close()
        reopened = PersistentProfileStore(tmp_path, flush_interval=0)
        assert reopened.recovered_entries == 8
        reopened.close()


# ---------------------------------------------------------- adaptive batching
class TestAdaptiveController:
    def test_window_and_size_never_leave_their_bounds(self):
        config = AdaptiveBatchingConfig(
            min_batch_delay=0.001,
            max_batch_delay=0.02,
            max_batch_size=16,
            delay_increase=0.005,
            size_increase=8,
            backoff=0.5,
            target_batch_seconds=0.1,
        )
        controller = _AimdController(config, delay=0.01, size=4)
        # Sustained saturation: additive increase must saturate at the caps.
        for _ in range(100):
            controller.observe(batch_size=controller.size, batch_seconds=0.01)
            assert controller.delay <= config.max_batch_delay
            assert controller.size <= config.max_batch_size
        assert controller.delay == config.max_batch_delay
        assert controller.size == config.max_batch_size
        # Sustained latency breaches: multiplicative decrease floors out.
        for _ in range(100):
            controller.observe(batch_size=1, batch_seconds=1.0)
            assert controller.delay >= config.min_batch_delay
            assert controller.size >= 1
        assert controller.size == 1
        assert controller.delay == pytest.approx(config.min_batch_delay)

    def test_idle_windows_shrink_the_delay(self):
        config = AdaptiveBatchingConfig(min_batch_delay=0.0, max_batch_delay=0.05)
        controller = _AimdController(config, delay=0.05, size=32)
        for _ in range(10):
            controller.observe(batch_size=1, batch_seconds=0.01)
        assert controller.delay < 0.05
        assert controller.decreases == 10

    def test_arrival_rate_estimate(self):
        config = AdaptiveBatchingConfig()
        controller = _AimdController(config, delay=0.01, size=8)
        assert controller.arrival_rate == 0.0
        for tick in range(5):
            controller.record_arrival(10.0 + tick * 0.1)
        assert controller.arrival_rate == pytest.approx(10.0)

    def test_controller_initial_state_is_clamped(self):
        config = AdaptiveBatchingConfig(
            min_batch_delay=0.002, max_batch_delay=0.01, max_batch_size=8
        )
        controller = _AimdController(config, delay=5.0, size=500)
        assert controller.delay == 0.01
        assert controller.size == 8

    def test_invalid_adaptive_config(self, pretrained_typer):
        with pytest.raises(ConfigurationError):
            AdaptiveBatchingConfig(backoff=1.5).validate()
        with pytest.raises(ConfigurationError):
            AdaptiveBatchingConfig(min_batch_delay=0.2, max_batch_delay=0.1).validate()
        with pytest.raises(ConfigurationError):
            AdaptiveBatchingConfig(max_batch_size=0).validate()
        with pytest.raises(ConfigurationError):
            AnnotationService(pretrained_typer, adaptive="yes")  # type: ignore[arg-type]


class TestAdaptiveService:
    def test_adaptive_service_is_bit_identical_and_exposes_decisions(
        self, pretrained_typer, mixed_tables
    ):
        expected = [pretrained_typer.annotate(t) for t in mixed_tables]

        async def drive():
            config = AdaptiveBatchingConfig(max_batch_delay=0.05, max_batch_size=8)
            async with AnnotationService(
                pretrained_typer, max_batch_size=4, max_batch_delay=0.02, adaptive=config
            ) as service:
                results = await asyncio.gather(
                    *[service.annotate(t) for t in mixed_tables]
                )
                return results, service.stats, service.summary()

        results, stats, summary = asyncio.run(drive())
        assert _comparable(results) == _comparable(expected)
        assert summary["adaptive"] is True
        # The controller's decisions are observable in the stats.
        assert "<global>" in stats.controllers
        decision = stats.controllers["<global>"]
        assert 0.0 <= decision["batch_delay"] <= 0.05
        assert 1 <= decision["batch_size"] <= 8
        assert decision["batches"] == stats.batches_total
        assert stats.batch_seconds_total > 0.0
        assert stats.to_dict()["controllers"]["<global>"] == decision

    def test_adaptive_controllers_are_per_customer(self, pretrained_typer, fig3_table):
        if "tenant-a" not in pretrained_typer.customer_ids:
            pretrained_typer.register_customer("tenant-a")

        async def drive():
            async with AnnotationService(
                pretrained_typer, max_batch_delay=0.02, adaptive=True
            ) as service:
                await asyncio.gather(
                    service.annotate(fig3_table.copy()),
                    service.annotate(fig3_table.copy(), customer_id="tenant-a"),
                )
                return service.stats

        stats = asyncio.run(drive())
        assert set(stats.controllers) == {"<global>", "tenant-a"}

    def test_fixed_mode_reports_no_controllers(self, pretrained_typer, fig3_table):
        async def drive():
            async with AnnotationService(pretrained_typer, max_batch_delay=0.0) as service:
                await service.annotate(fig3_table.copy())
                return service.stats, service.summary()

        stats, summary = asyncio.run(drive())
        assert stats.controllers == {}
        assert summary["adaptive"] is False
