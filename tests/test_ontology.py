"""Unit tests for the semantic type ontology."""

from __future__ import annotations

import pytest

from repro.core.errors import OntologyError
from repro.core.ontology import (
    UNKNOWN_TYPE,
    DataKind,
    SemanticType,
    TypeOntology,
    build_default_ontology,
    normalize_type_name,
)


class TestNormalization:
    @pytest.mark.parametrize(
        "raw,expected",
        [("Zip Code", "zip_code"), ("zip-code", "zip_code"), ("ZIP_CODE", "zip_code"), ("  city ", "city")],
    )
    def test_normalize(self, raw, expected):
        assert normalize_type_name(raw) == expected


class TestSemanticType:
    def test_name_is_normalised(self):
        semantic_type = SemanticType(name="Zip Code")
        assert semantic_type.name == "zip_code"
        assert semantic_type.label == "zip code"

    def test_empty_name_rejected(self):
        with pytest.raises(OntologyError):
            SemanticType(name="")

    def test_all_names_includes_synonyms(self):
        semantic_type = SemanticType(name="salary", synonyms=("income", "wage"))
        assert "income" in semantic_type.all_names()
        assert "salary" in semantic_type.all_names()


class TestTypeOntology:
    @pytest.fixture()
    def small_ontology(self) -> TypeOntology:
        ontology = TypeOntology()
        ontology.register(SemanticType(name="thing"))
        ontology.register(SemanticType(name="monetary", parent="thing", kind=DataKind.NUMERIC))
        ontology.register(SemanticType(name="salary", parent="monetary", synonyms=("income",)))
        ontology.register(SemanticType(name="price", parent="monetary"))
        ontology.register(SemanticType(name="place", parent="thing"))
        ontology.register(SemanticType(name="city", parent="place"))
        return ontology

    def test_duplicate_registration_rejected(self, small_ontology):
        with pytest.raises(OntologyError):
            small_ontology.register(SemanticType(name="salary"))

    def test_unknown_parent_rejected(self):
        ontology = TypeOntology()
        with pytest.raises(OntologyError):
            ontology.register(SemanticType(name="child", parent="missing"))

    def test_lookup_and_resolution(self, small_ontology):
        assert "salary" in small_ontology
        assert small_ontology.get("salary").parent == "monetary"
        assert small_ontology.resolve("income") == "salary"
        assert small_ontology.resolve("Income") == "salary"
        assert small_ontology.resolve("nonexistent") is None

    def test_get_unknown_raises(self, small_ontology):
        with pytest.raises(OntologyError):
            small_ontology.get("does_not_exist")

    def test_hierarchy_queries(self, small_ontology):
        assert [t.name for t in small_ontology.ancestors("salary")] == ["monetary", "thing"]
        assert {t.name for t in small_ontology.children("monetary")} == {"salary", "price"}
        assert {t.name for t in small_ontology.descendants("thing")} >= {"salary", "price", "city"}
        assert small_ontology.is_a("salary", "thing")
        assert not small_ontology.is_a("salary", "place")
        assert small_ontology.depth("salary") == 2
        assert small_ontology.depth("thing") == 0

    def test_distance(self, small_ontology):
        assert small_ontology.distance("salary", "salary") == 0
        assert small_ontology.distance("salary", "price") == 2
        assert small_ontology.distance("salary", "city") == 4

    def test_add_synonym(self, small_ontology):
        small_ontology.add_synonym("salary", "compensation")
        assert small_ontology.resolve("compensation") == "salary"
        with pytest.raises(OntologyError):
            small_ontology.add_synonym("missing", "x")

    def test_subset(self, small_ontology):
        subset = small_ontology.subset(["salary", "city"])
        assert len(subset) == 2
        # Parents outside the subset are detached, not re-created.
        assert subset.get("salary").parent is None

    def test_roots(self, small_ontology):
        assert [t.name for t in small_ontology.roots()] == ["thing"]

    def test_types_of_kind(self, small_ontology):
        numeric = {t.name for t in small_ontology.types_of_kind(DataKind.NUMERIC)}
        assert "monetary" in numeric

    def test_round_trip_dict(self, small_ontology):
        restored = TypeOntology.from_dict(small_ontology.to_dict())
        assert restored.type_names == small_ontology.type_names
        assert restored.resolve("income") == "salary"


class TestDefaultOntology:
    def test_contains_unknown_type(self, ontology):
        assert UNKNOWN_TYPE in ontology

    def test_reasonable_size(self, ontology):
        # The paper uses >500 DBpedia types; our offline ontology covers ~100,
        # dominated by leaf types usable as predictions.
        assert len(ontology) >= 90

    def test_paper_example_types_present(self, ontology):
        for name in ("salary", "revenue", "phone_number", "city", "country", "date", "id"):
            assert name in ontology

    def test_synonym_income_maps_to_salary(self, ontology):
        assert ontology.resolve("income") == "salary"

    def test_every_leaf_has_a_value_generator(self, ontology):
        from repro.corpus.generators import TYPE_PROFILES

        leaves = [
            t.name for t in ontology
            if not ontology.children(t.name) and t.name != UNKNOWN_TYPE
        ]
        missing = [name for name in leaves if name not in TYPE_PROFILES]
        assert missing == []

    def test_exclude_unknown_option(self):
        ontology = build_default_ontology(include_unknown=False)
        assert UNKNOWN_TYPE not in ontology
