"""Unit tests for the Table/Column substrate."""

from __future__ import annotations

import pytest

from repro.core.datatypes import DataType
from repro.core.errors import ColumnNotFoundError, TableError
from repro.core.table import Column, Table


@pytest.fixture()
def sample_table() -> Table:
    return Table.from_columns_dict(
        {
            "id": ["1", "2", "3", "4"],
            "name": ["Ann", "Bob", "Cat", None],
            "salary": ["50000", "60000", "70000", "80000"],
        },
        name="people",
        semantic_types={"salary": "salary", "name": "name"},
    )


class TestColumn:
    def test_length_and_iteration(self):
        column = Column("x", ["a", "b", "c"])
        assert len(column) == 3
        assert list(column) == ["a", "b", "c"]

    def test_data_type_inference_is_cached(self):
        column = Column("x", ["1", "2", "3"])
        assert column.data_type is DataType.INTEGER
        column.values.append("not a number")
        # Cached value remains until explicitly invalidated.
        assert column.data_type is DataType.INTEGER
        column.invalidate_cache()
        assert column.data_type is not DataType.INTEGER

    def test_non_null_values(self):
        column = Column("x", ["a", None, "", "b", "N/A"])
        assert column.non_null_values() == ["a", "b"]

    def test_null_fraction(self):
        column = Column("x", ["a", None, "b", None])
        assert column.null_fraction() == 0.5

    def test_null_fraction_empty_column(self):
        assert Column("x", []).null_fraction() == 0.0

    def test_numeric_values(self):
        column = Column("x", ["$1,000", "2000", "abc"])
        assert column.numeric_values() == [1000.0, 2000.0]

    def test_unique_values_order_preserved(self):
        column = Column("x", ["b", "a", "b", "c", "a"])
        assert column.unique_values() == ["b", "a", "c"]

    def test_unique_fraction(self):
        column = Column("x", ["a", "a", "b", "b"])
        assert column.unique_fraction() == 0.5

    def test_most_frequent_values(self):
        column = Column("x", ["a", "b", "a", "c", "a", "b"])
        assert column.most_frequent_values(2) == ["a", "b"]

    def test_sample_is_reproducible(self):
        column = Column("x", [str(i) for i in range(100)])
        assert column.sample(10, seed=1) == column.sample(10, seed=1)
        assert len(column.sample(10, seed=1)) == 10

    def test_sample_smaller_than_k_returns_all(self):
        column = Column("x", ["a", "b"])
        assert column.sample(10) == ["a", "b"]

    def test_rename_and_with_values_copy(self):
        column = Column("x", ["a"], semantic_type="name")
        renamed = column.rename("y")
        assert renamed.name == "y"
        assert renamed.semantic_type == "name"
        replaced = column.with_values(["z"])
        assert replaced.values == ["z"]
        assert column.values == ["a"]

    def test_round_trip_dict(self):
        column = Column("x", ["a", None], semantic_type="name", metadata={"k": 1})
        restored = Column.from_dict(column.to_dict())
        assert restored.name == column.name
        assert restored.values == column.values
        assert restored.semantic_type == column.semantic_type
        assert restored.metadata == column.metadata


class TestTable:
    def test_shape(self, sample_table):
        assert sample_table.shape == (4, 3)
        assert sample_table.num_rows == 4
        assert sample_table.num_columns == 3

    def test_ragged_columns_rejected(self):
        with pytest.raises(TableError):
            Table([Column("a", ["1"]), Column("b", ["1", "2"])])

    def test_column_access_by_name_and_index(self, sample_table):
        assert sample_table.column("name").name == "name"
        assert sample_table.column(0).name == "id"
        assert sample_table["salary"].semantic_type == "salary"

    def test_missing_column_raises(self, sample_table):
        with pytest.raises(ColumnNotFoundError):
            sample_table.column("does_not_exist")
        with pytest.raises(ColumnNotFoundError):
            sample_table.column(99)

    def test_contains(self, sample_table):
        assert "id" in sample_table
        assert "missing" not in sample_table

    def test_row_access(self, sample_table):
        assert sample_table.row(0) == ["1", "Ann", "50000"]
        with pytest.raises(TableError):
            sample_table.row(10)

    def test_rows_iterator(self, sample_table):
        rows = list(sample_table.rows())
        assert len(rows) == 4
        assert rows[1] == ["2", "Bob", "60000"]

    def test_add_column_enforces_shape(self, sample_table):
        sample_table.add_column(Column("extra", ["a", "b", "c", "d"]))
        assert sample_table.num_columns == 4
        with pytest.raises(TableError):
            sample_table.add_column(Column("bad", ["only one"]))

    def test_drop_and_select_columns(self, sample_table):
        dropped = sample_table.drop_column("id")
        assert dropped.column_names == ["name", "salary"]
        selected = sample_table.select_columns(["salary", "id"])
        assert selected.column_names == ["salary", "id"]
        # Original is untouched.
        assert sample_table.column_names == ["id", "name", "salary"]

    def test_head_and_sample_rows(self, sample_table):
        assert sample_table.head(2).num_rows == 2
        sampled = sample_table.sample_rows(2, seed=3)
        assert sampled.num_rows == 2
        assert sample_table.sample_rows(10).num_rows == 4

    def test_from_rows_validates_width(self):
        with pytest.raises(TableError):
            Table.from_rows(["a", "b"], [["1"]])

    def test_from_rows_with_semantic_types(self):
        table = Table.from_rows(["a", "b"], [["1", "x"]], semantic_types=["id", None])
        assert table.column("a").semantic_type == "id"
        assert table.column("b").semantic_type is None

    def test_round_trip_dict(self, sample_table):
        restored = Table.from_dict(sample_table.to_dict())
        assert restored.column_names == sample_table.column_names
        assert restored.num_rows == sample_table.num_rows
        assert restored.column("salary").semantic_type == "salary"

    def test_semantic_types_listing(self, sample_table):
        assert sample_table.semantic_types() == [None, "name", "salary"]

    def test_preview_renders(self, sample_table):
        preview = sample_table.preview(2)
        assert "id" in preview and "salary" in preview
        assert len(preview.splitlines()) == 4

    def test_copy_is_independent(self, sample_table):
        copy = sample_table.copy()
        copy.column("id").values[0] = "changed"
        assert sample_table.column("id").values[0] == "1"

    def test_map_columns(self, sample_table):
        upper = sample_table.map_columns(lambda c: c.rename(c.name.upper()))
        assert upper.column_names == ["ID", "NAME", "SALARY"]
