"""Unit tests for the global/local model architecture and weight vectors."""

from __future__ import annotations

import pytest

from repro.adaptation import (
    CustomerContext,
    GlobalLocalWeights,
    GlobalModel,
    GlobalModelConfig,
    LocalModel,
    LocalModelConfig,
    WeightScheduleConfig,
)
from repro.core.errors import ConfigurationError
from repro.corpus import GitTablesConfig, GitTablesGenerator
from repro.dpbd import DPBDSession


class TestWeightSchedules:
    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            WeightScheduleConfig(schedule="exponential").validate()
        with pytest.raises(ConfigurationError):
            WeightScheduleConfig(saturation_k=0).validate()
        with pytest.raises(ConfigurationError):
            WeightScheduleConfig(max_local_weight=0.0).validate()

    def test_local_weight_starts_at_zero(self):
        weights = GlobalLocalWeights()
        assert weights.local_weight("salary") == 0.0
        assert weights.global_weight("salary") == 1.0

    def test_local_weight_grows_with_observations(self):
        weights = GlobalLocalWeights()
        previous = 0.0
        for _ in range(5):
            weights.record_observation("salary")
            current = weights.local_weight("salary")
            assert current > previous
            previous = current
        assert previous <= weights.config.max_local_weight

    def test_saturating_never_reaches_cap_exactly_fast(self):
        weights = GlobalLocalWeights(config=WeightScheduleConfig(saturation_k=2.0))
        weights.record_observation("salary")
        assert weights.local_weight("salary") == pytest.approx(1 / 3)

    def test_linear_schedule(self):
        weights = GlobalLocalWeights(
            config=WeightScheduleConfig(schedule="linear", linear_n_max=4.0, max_local_weight=0.9)
        )
        for _ in range(2):
            weights.record_observation("salary")
        assert weights.local_weight("salary") == pytest.approx(0.5)
        for _ in range(10):
            weights.record_observation("salary")
        assert weights.local_weight("salary") == 0.9

    def test_implicit_observations_count_less(self):
        explicit = GlobalLocalWeights()
        implicit = GlobalLocalWeights()
        explicit.record_observation("salary")
        implicit.record_observation("salary", implicit=True)
        assert implicit.local_weight("salary") < explicit.local_weight("salary")

    def test_empty_type_rejected(self):
        with pytest.raises(ConfigurationError):
            GlobalLocalWeights().record_observation("")

    def test_combine_scores_interpolates(self):
        weights = GlobalLocalWeights(config=WeightScheduleConfig(saturation_k=1.0))
        weights.record_observation("salary")  # local weight 0.5
        combined = weights.combine_scores({"salary": 0.2, "revenue": 0.8}, {"salary": 1.0})
        assert combined["salary"] == pytest.approx(0.6)
        # Types without local observations keep their global confidence.
        assert combined["revenue"] == pytest.approx(0.8)

    def test_combine_scores_order_is_hashseed_independent(self):
        """Regression (repro-lint RL004): combining iterates the union of the
        two score dicts in sorted order, so the combined mapping — and any
        insertion-order-sensitive consumer (max tie-breaks, codecs) — is
        identical across interpreters regardless of PYTHONHASHSEED."""
        weights = GlobalLocalWeights(config=WeightScheduleConfig(saturation_k=1.0))
        weights.record_observation("salary")
        combined = weights.combine_scores(
            {"salary": 0.2, "revenue": 0.8}, {"zip": 0.1, "salary": 1.0, "age": 0.3}
        )
        assert list(combined) == sorted(combined)

    def test_weight_vectors(self):
        weights = GlobalLocalWeights()
        weights.record_observation("salary")
        global_w, local_w = weights.weight_vectors()
        assert set(global_w) == {"salary"}
        assert global_w["salary"] + local_w["salary"] == pytest.approx(1.0)


class TestLocalModel:
    def _update(self, fig3_table, corpus):
        session = DPBDSession(source_corpus=corpus)
        return session.relabel(fig3_table, "Income", "salary", previous_type="revenue")

    @pytest.fixture(scope="class")
    def corpus(self):
        return GitTablesGenerator(GitTablesConfig(num_tables=20, seed=31)).generate_corpus()

    def test_apply_update_accumulates_state(self, fig3_table, corpus):
        model = LocalModel("acme")
        assert not model.has_adaptations()
        model.apply_update(self._update(fig3_table, corpus))
        assert model.has_adaptations()
        assert model.adapted_types == ["salary"]
        assert len(model.labeling_functions) >= 3
        assert len(model.training_examples) >= 1

    def test_predict_scores_after_feedback(self, fig3_table, corpus):
        model = LocalModel("acme")
        model.apply_update(self._update(fig3_table, corpus))
        scores = model.predict_scores(fig3_table["Income"], fig3_table)
        assert scores.get("salary", 0.0) > 0.5

    def test_combine_with_global_moves_towards_local(self, fig3_table, corpus):
        model = LocalModel("acme")
        update = self._update(fig3_table, corpus)
        model.apply_update(update)
        model.apply_update(self._update(fig3_table, corpus))
        combined = model.combine_with_global(
            {"revenue": 0.9, "salary": 0.1}, fig3_table["Income"], fig3_table
        )
        assert combined["salary"] > 0.1
        # Without adaptations the global scores pass through untouched.
        fresh = LocalModel("other")
        assert fresh.combine_with_global({"revenue": 0.9}, fig3_table["Income"]) == {"revenue": 0.9}

    def test_training_example_cap(self, fig3_table, corpus):
        model = LocalModel("acme", config=LocalModelConfig(max_training_examples=3))
        for _ in range(5):
            model.apply_update(self._update(fig3_table, corpus))
        assert len(model.training_examples) <= 3

    def test_summary_contents(self, fig3_table, corpus):
        model = LocalModel("acme")
        model.apply_update(self._update(fig3_table, corpus))
        summary = model.summary()
        assert summary["customer_id"] == "acme"
        assert summary["updates_applied"] == 1
        assert "salary" in summary["local_weights"]

    def test_finetune_without_classifier_is_noop(self, fig3_table, corpus):
        model = LocalModel("acme")
        model.apply_update(self._update(fig3_table, corpus))
        assert model.finetune_classifier() is False


class TestCustomerContext:
    def test_create_and_apply(self, fig3_table):
        context = CustomerContext.create("acme")
        update = context.dpbd.relabel(fig3_table, "Income", "salary")
        context.apply(update)
        assert context.local_model.has_adaptations()
        assert len(context.applied_updates) == 1
        assert context.summary()["feedback"]["relabel"] == 1


class TestGlobalModel:
    @pytest.fixture(scope="class")
    def heuristics_only_model(self):
        corpus = GitTablesGenerator(GitTablesConfig(num_tables=12, seed=41)).generate_corpus()
        return GlobalModel.pretrain(
            training_corpus=corpus,
            include_learned_model=False,
            config=GlobalModelConfig(),
        )

    def test_pipeline_composition_without_learned_model(self, heuristics_only_model):
        assert heuristics_only_model.pipeline.step_names == ["header_matching", "value_lookup"]
        assert heuristics_only_model.classifier is None

    def test_annotation_works(self, heuristics_only_model, fig3_table):
        prediction = heuristics_only_model.annotate(fig3_table)
        assert len(prediction) == 4
        assert prediction.as_mapping()["Name"] == "name"

    def test_full_model_has_three_steps(self, pretrained_typer):
        assert pretrained_typer.global_model.pipeline.step_names == [
            "header_matching",
            "value_lookup",
            "table_embedding",
        ]
        assert pretrained_typer.global_model.classifier is not None

    def test_global_labeling_function_store_shared(self, heuristics_only_model):
        store = heuristics_only_model.global_labeling_functions
        assert len(store) == 0
