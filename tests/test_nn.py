"""Unit tests for the numpy neural-network substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ConfigurationError, ModelNotTrainedError
from repro.nn import (
    Adam,
    Dense,
    Dropout,
    MLPClassifier,
    MLPConfig,
    ReLU,
    SGD,
    accuracy,
    cross_entropy,
    cross_entropy_grad,
    minibatches,
    one_hot,
    relu,
    softmax,
)


class TestFunctional:
    def test_relu(self):
        np.testing.assert_array_equal(relu(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 2.0])

    def test_softmax_rows_sum_to_one(self):
        logits = np.array([[1.0, 2.0, 3.0], [100.0, 100.0, 100.0]])
        probabilities = softmax(logits)
        np.testing.assert_allclose(probabilities.sum(axis=1), [1.0, 1.0])
        assert probabilities[0].argmax() == 2

    def test_softmax_numerical_stability(self):
        probabilities = softmax(np.array([[1000.0, 1001.0]]))
        assert np.all(np.isfinite(probabilities))

    def test_cross_entropy_perfect_prediction_is_low(self):
        confident = np.array([[10.0, -10.0]])
        wrong = np.array([[-10.0, 10.0]])
        targets = np.array([0])
        assert cross_entropy(confident, targets) < cross_entropy(wrong, targets)

    def test_cross_entropy_grad_matches_numerical(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(4, 3))
        targets = np.array([0, 1, 2, 1])
        analytic = cross_entropy_grad(logits, targets)
        numeric = np.zeros_like(logits)
        epsilon = 1e-6
        for i in range(logits.shape[0]):
            for j in range(logits.shape[1]):
                plus = logits.copy(); plus[i, j] += epsilon
                minus = logits.copy(); minus[i, j] -= epsilon
                numeric[i, j] = (cross_entropy(plus, targets) - cross_entropy(minus, targets)) / (2 * epsilon)
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)

    def test_one_hot(self):
        encoded = one_hot(np.array([0, 2]), 3)
        np.testing.assert_array_equal(encoded, [[1, 0, 0], [0, 0, 1]])

    def test_accuracy(self):
        logits = np.array([[0.9, 0.1], [0.2, 0.8]])
        assert accuracy(logits, np.array([0, 1])) == 1.0
        assert accuracy(logits, np.array([1, 0])) == 0.0
        assert accuracy(np.zeros((0, 2)), np.array([], dtype=int)) == 0.0

    def test_minibatches_cover_all_rows(self):
        rng = np.random.default_rng(1)
        batches = list(minibatches(10, 3, rng))
        seen = np.concatenate(batches)
        assert sorted(seen.tolist()) == list(range(10))
        assert max(len(batch) for batch in batches) == 3


class TestLayers:
    def test_dense_shapes_and_backward(self):
        rng = np.random.default_rng(0)
        layer = Dense(4, 3, rng)
        x = rng.normal(size=(5, 4))
        out = layer.forward(x, training=True)
        assert out.shape == (5, 3)
        grad_in = layer.backward(np.ones_like(out))
        assert grad_in.shape == x.shape
        assert layer.grad_weights.shape == (4, 3)

    def test_dense_backward_requires_forward(self):
        layer = Dense(2, 2, np.random.default_rng(0))
        with pytest.raises(ConfigurationError):
            layer.backward(np.ones((1, 2)))

    def test_dense_invalid_sizes(self):
        with pytest.raises(ConfigurationError):
            Dense(0, 3, np.random.default_rng(0))

    def test_relu_layer_gradient_mask(self):
        layer = ReLU()
        x = np.array([[-1.0, 2.0]])
        layer.forward(x, training=True)
        grad = layer.backward(np.array([[5.0, 5.0]]))
        np.testing.assert_array_equal(grad, [[0.0, 5.0]])

    def test_dropout_inactive_at_inference(self):
        layer = Dropout(0.5, np.random.default_rng(0))
        x = np.ones((4, 4))
        np.testing.assert_array_equal(layer.forward(x, training=False), x)

    def test_dropout_scales_at_training(self):
        layer = Dropout(0.5, np.random.default_rng(0))
        out = layer.forward(np.ones((200, 10)), training=True)
        # Inverted dropout keeps the expected activation roughly constant.
        assert abs(out.mean() - 1.0) < 0.15

    def test_dropout_invalid_rate(self):
        with pytest.raises(ConfigurationError):
            Dropout(1.0, np.random.default_rng(0))


class TestOptimizers:
    def test_sgd_moves_parameters_against_gradient(self):
        parameter = np.array([1.0, 1.0])
        SGD(learning_rate=0.1).step([parameter], [np.array([1.0, -1.0])])
        np.testing.assert_allclose(parameter, [0.9, 1.1])

    def test_adam_converges_on_quadratic(self):
        parameter = np.array([5.0])
        optimizer = Adam(learning_rate=0.1)
        for _ in range(300):
            gradient = 2 * parameter
            optimizer.step([parameter], [gradient])
        assert abs(parameter[0]) < 0.1

    def test_invalid_learning_rate(self):
        with pytest.raises(ConfigurationError):
            Adam(learning_rate=0.0)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            SGD().step([np.zeros(2)], [])


class TestMLPClassifier:
    def _blobs(self, n=300, seed=0):
        rng = np.random.default_rng(seed)
        centers = np.array([[0.0, 0.0], [4.0, 4.0], [0.0, 4.0]])
        labels = rng.integers(0, 3, size=n)
        features = centers[labels] + rng.normal(scale=0.5, size=(n, 2))
        return features, labels

    def test_learns_separable_clusters(self):
        features, labels = self._blobs()
        model = MLPClassifier(2, 3, MLPConfig(hidden_sizes=(16,), max_epochs=60, seed=1, dropout=0.0))
        model.fit(features, labels)
        assert accuracy(model.predict_logits(features), labels) > 0.9

    def test_predict_before_fit_raises(self):
        model = MLPClassifier(2, 3)
        with pytest.raises(ModelNotTrainedError):
            model.predict_proba(np.zeros((1, 2)))

    def test_probabilities_sum_to_one(self):
        features, labels = self._blobs(150)
        model = MLPClassifier(2, 3, MLPConfig(hidden_sizes=(8,), max_epochs=10, seed=2))
        model.fit(features, labels)
        probabilities = model.predict_proba(features[:10])
        np.testing.assert_allclose(probabilities.sum(axis=1), np.ones(10), atol=1e-9)

    def test_single_row_prediction(self):
        features, labels = self._blobs(100)
        model = MLPClassifier(2, 3, MLPConfig(hidden_sizes=(8,), max_epochs=5, seed=3))
        model.fit(features, labels)
        assert model.predict_proba(features[0]).shape == (1, 3)

    def test_invalid_inputs_rejected(self):
        model = MLPClassifier(2, 3)
        with pytest.raises(ConfigurationError):
            model.fit(np.zeros((5, 3)), np.zeros(5, dtype=int))
        with pytest.raises(ConfigurationError):
            model.fit(np.zeros((5, 2)), np.zeros(4, dtype=int))
        with pytest.raises(ConfigurationError):
            model.fit(np.zeros((5, 2)), np.array([0, 1, 2, 3, 9]))

    def test_warm_start_continues_training(self):
        features, labels = self._blobs(200)
        model = MLPClassifier(2, 3, MLPConfig(hidden_sizes=(16,), max_epochs=5, seed=4, dropout=0.0))
        model.fit(features, labels)
        before = accuracy(model.predict_logits(features), labels)
        model.fit(features, labels, warm_start=True, max_epochs=40)
        after = accuracy(model.predict_logits(features), labels)
        assert after >= before - 0.05

    def test_get_set_weights_round_trip(self):
        features, labels = self._blobs(100)
        model = MLPClassifier(2, 3, MLPConfig(hidden_sizes=(8,), max_epochs=5, seed=5))
        model.fit(features, labels)
        weights = model.get_weights()
        reference = model.predict_proba(features[:5])
        model.set_weights(weights)
        np.testing.assert_allclose(model.predict_proba(features[:5]), reference)

    def test_set_weights_shape_mismatch_rejected(self):
        model = MLPClassifier(2, 3, MLPConfig(hidden_sizes=(8,), max_epochs=1))
        with pytest.raises(ConfigurationError):
            model.set_weights([np.zeros((1, 1))])

    def test_history_recorded(self):
        features, labels = self._blobs(120)
        model = MLPClassifier(2, 3, MLPConfig(hidden_sizes=(8,), max_epochs=6, seed=6))
        history = model.fit(features, labels)
        assert history.epochs >= 1
        assert len(history.train_loss) == history.epochs

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            MLPConfig(dropout=1.5).validate()
        with pytest.raises(ConfigurationError):
            MLPConfig(hidden_sizes=(0,)).validate()
        with pytest.raises(ConfigurationError):
            MLPClassifier(0, 3)
