"""E8 (Section 2.2): web-trained vs. database-trained models.

The paper's central argument for GitTables: models pretrained on web tables do
not transfer to enterprise database tables, because web tables are small,
homogeneous, and cover a narrow slice of enterprise semantics.  This
experiment trains the same learned classifier twice — once on the
WebTables-like corpus and once on the GitTables-like corpus of equal size —
and evaluates both on held-out database-like tables.

Expected shape: the database-trained model wins by a wide margin; a large part
of the gap is label coverage (types web tables never contain).
"""

from __future__ import annotations

import pytest

from repro.corpus import GitTablesConfig, GitTablesGenerator, WebTablesGenerator
from repro.corpus.webtables import WebTablesConfig
from repro.embedding_model import TableEmbeddingClassifier
from repro.evaluation import evaluate_annotator, format_table
from repro.nn import MLPConfig

_TRAIN_TABLES = 80
_EPOCHS = 30


class _ClassifierAnnotator:
    """Adapter: bare classifier → table annotator for the evaluation harness."""

    def __init__(self, classifier):
        self.classifier = classifier

    def annotate(self, table):
        from repro.core.prediction import ColumnPrediction, TablePrediction

        predictions = []
        for index, column in enumerate(table.columns):
            scores = self.classifier.predict_column(column, table, top_k=3)
            abstained = not scores or scores[0].type_name == "unknown"
            predictions.append(
                ColumnPrediction(
                    column_index=index,
                    column_name=column.name,
                    scores=[s for s in scores if s.type_name != "unknown"],
                    source_step="table_embedding",
                    abstained=abstained,
                )
            )
        return TablePrediction(table_name=table.name, columns=predictions)


@pytest.fixture(scope="module")
def corpora():
    web = WebTablesGenerator(WebTablesConfig(num_tables=_TRAIN_TABLES, seed=701)).generate_corpus()
    database = GitTablesGenerator(GitTablesConfig(num_tables=_TRAIN_TABLES, seed=702)).generate_corpus()
    held_out = GitTablesGenerator(GitTablesConfig(num_tables=20, seed=703)).generate_corpus()
    return web, database, held_out


def test_training_data_relevance_gap(benchmark, corpora, record_result):
    web_corpus, database_corpus, held_out = corpora

    def train(corpus, seed):
        classifier = TableEmbeddingClassifier(
            mlp_config=MLPConfig(max_epochs=_EPOCHS, hidden_sizes=(128, 64), seed=seed)
        )
        classifier.fit(corpus)
        return classifier

    web_model = train(web_corpus, seed=1)
    database_model = benchmark.pedantic(
        train, args=(database_corpus,), kwargs={"seed": 2}, rounds=1, iterations=1
    )

    rows = []
    held_out_types = set(held_out.semantic_types())
    for name, model, corpus in (
        ("web-trained (WebTables-like)", web_model, web_corpus),
        ("database-trained (GitTables-like)", database_model, database_corpus),
    ):
        result = evaluate_annotator(_ClassifierAnnotator(model), held_out, name=name)
        covered = set(model.known_types()) & held_out_types
        rows.append(
            {
                "training_corpus": name,
                "training_columns": len(corpus.labeled_columns()),
                "types_in_training": len(corpus.semantic_types()),
                "held_out_types_covered": f"{len(covered)}/{len(held_out_types)}",
                "accuracy": result.metrics.accuracy,
                "macro_f1": result.metrics.macro_f1,
                "coverage": result.metrics.coverage,
            }
        )

    record_result(
        "E8_training_data_gap",
        format_table(rows, title="E8 — web-trained vs database-trained models on database tables"),
    )

    web_row, database_row = rows
    assert database_row["accuracy"] > web_row["accuracy"] + 0.1, (
        "the database-trained model should clearly beat the web-trained one on database tables"
    )
    assert database_row["macro_f1"] > web_row["macro_f1"]
