"""E17: store-aware worker pool — warm routing vs blind round-robin, plus a kill.

PR 10 puts N annotation processes behind one admission layer: the
:class:`~repro.serving.pool.AnnotationPool` dispatcher routes each table to
the worker whose :class:`~repro.serving.profile_store.PersistentProfileStore`
LRU already holds the table's column profiles (warmth learned from the PR 4
sidecar index journals plus a dispatch overlay).  This experiment pins the
three properties that make the pool deployable:

* **affinity** — on a repeat-heavy tenant mix (the paper's serving shape:
  the same customer tables re-annotated many times) ≥90% of requests land
  on a warm worker;
* **parity** — pool predictions are bit-identical to the serial path, for
  warm routing, for the blind round-robin baseline, and across a worker
  death;
* **supervision** — a SIGKILLed worker's in-flight requests are re-dispatched
  to its replacement with zero lost requests.

Wall-clock (warm vs round-robin columns/s) is reported always and *gated*
only when ≥4 usable CPUs are present: on the 1-CPU build container the two
configurations are scheduling noise (canonical caveat in docs/SERVING.md).
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import time
from pathlib import Path

from repro.corpus import GitTablesConfig, GitTablesGenerator
from repro.evaluation import format_table
from repro.serving import AnnotationPool, PoolSpec, available_workers
from repro.serving.pool import _rendezvous_slot

#: Machine-readable E17 results, committed at the repo root alongside the
#: other benchmark artifacts.
BENCH_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_pool_routing.json"

#: Repeat-heavy mix: a small set of customer tables annotated over and over —
#: round r of table t re-requests the exact bytes of round r-1, so warmth is
#: real (the LRU namespace is hot) rather than incidental.
POOL_TABLES = 8
ROUNDS = 12
POOL_WORKERS = 2


def _fresh(tables):
    """Cold per-column caches, as every incoming request would carry."""
    return [table.copy() for table in tables]


def _comparable(predictions):
    """Prediction content without wall-clock timings (bit-exact floats)."""
    return [(p.table_name, p.step_trace, p.columns) for p in predictions]


def test_pool_routing(benchmark, sigmatyper, record_result):
    tables = GitTablesGenerator(
        GitTablesConfig(num_tables=POOL_TABLES, seed=424242)
    ).generate_corpus().tables
    num_columns = sum(table.num_columns for table in tables)

    # Warm the model-level caches once so every configuration faces the same
    # model state; per-column caches stay cold per configuration.
    sigmatyper.annotate_corpus(_fresh(tables))
    reference = _comparable([sigmatyper.annotate(t) for t in _fresh(tables)])

    # Each round visits the tables rotated by one position, so the arrival
    # order never lines up with the worker count: a blind round-robin cannot
    # stay accidentally sticky, while warm routing is order-insensitive.
    expected = []
    for offset in range(ROUNDS):
        shift = offset % len(tables)
        expected.extend(reference[shift:] + reference[:shift])

    async def run_leg(routing: str):
        spec = PoolSpec(workers=POOL_WORKERS, routing=routing)
        async with AnnotationPool(sigmatyper, spec) as pool:
            started = time.perf_counter()
            results = []
            for offset in range(ROUNDS):
                shift = offset % len(tables)
                for table in tables[shift:] + tables[:shift]:
                    results.append(await pool.annotate(table.copy()))
            elapsed = time.perf_counter() - started
            stats = pool.stats
        assert _comparable(results) == expected, (
            f"pool routing={routing} diverged from the serial path"
        )
        return elapsed, stats

    rows = []

    def add_row(label, elapsed, stats):
        rows.append(
            {
                "configuration": label,
                "seconds_total": round(elapsed, 3),
                "columns_per_second": round(num_columns * ROUNDS / elapsed, 1),
                "affinity_hit_rate": stats.affinity_hit_rate,
                "escapes": stats.escapes,
                "redispatches": stats.redispatches,
                "worker_deaths": stats.worker_deaths,
            }
        )

    # ---- leg 1: warm routing (the PR 10 dispatcher) -------------------------
    warm_elapsed, warm_stats = asyncio.run(run_leg("warm"))
    add_row(f"pool:{POOL_WORKERS} (warm routing)", warm_elapsed, warm_stats)
    assert warm_stats.affinity_hit_rate >= 0.9, warm_stats.to_dict()
    assert warm_stats.errors_total == 0

    # ---- leg 2: blind round-robin baseline ----------------------------------
    rr_elapsed, rr_stats = asyncio.run(run_leg("round-robin"))
    add_row(f"pool:{POOL_WORKERS} (round-robin)", rr_elapsed, rr_stats)
    assert rr_stats.errors_total == 0

    speedup = rr_elapsed / warm_elapsed
    usable_cpus = available_workers()
    speedup_gate_armed = usable_cpus >= 4
    if speedup_gate_armed:
        assert speedup >= 1.0, (
            f"warm routing slower than round-robin on {usable_cpus} CPUs "
            f"(speedup {speedup:.2f})"
        )

    # ---- leg 3: the supervision drill (SIGKILL mid-flight) ------------------
    async def kill_drill():
        spec = PoolSpec(workers=POOL_WORKERS, heartbeat_interval=0.05)
        async with AnnotationPool(sigmatyper, spec) as pool:
            batch = _fresh(tables) + _fresh(tables)
            futures = [asyncio.ensure_future(pool.annotate(t)) for t in batch]
            await asyncio.sleep(0.01)  # requests are now dispatched
            victim = pool._workers[0]
            os.kill(victim.process.pid, signal.SIGKILL)
            started = time.perf_counter()
            results = await asyncio.gather(*futures)
            elapsed = time.perf_counter() - started
            return results, elapsed, pool.stats

    drill_results, drill_elapsed, drill_stats = asyncio.run(kill_drill())
    assert _comparable(drill_results) == reference * 2, (
        "predictions diverged across the worker death"
    )
    lost_requests = (2 * len(tables)) - drill_stats.completed_total
    assert lost_requests == 0, drill_stats.to_dict()
    assert drill_stats.worker_deaths >= 1
    assert drill_stats.restarts >= 1
    assert drill_stats.redispatches >= 1
    rows.append(
        {
            "configuration": f"pool:{POOL_WORKERS} (SIGKILL drill)",
            "seconds_total": round(drill_elapsed, 3),
            "columns_per_second": round(num_columns * 2 / drill_elapsed, 1),
            "affinity_hit_rate": drill_stats.affinity_hit_rate,
            "escapes": drill_stats.escapes,
            "redispatches": drill_stats.redispatches,
            "worker_deaths": drill_stats.worker_deaths,
        }
    )

    record_result(
        "E17_pool_routing",
        format_table(
            rows,
            title=(
                f"E17 — pool routing over {len(tables)} tables / {num_columns} "
                f"columns × {ROUNDS} rounds, {POOL_WORKERS} workers, "
                f"{usable_cpus} usable CPUs (affinity "
                f"{warm_stats.affinity_hit_rate:.3f}, kill drill: "
                f"{drill_stats.redispatches} re-dispatched, 0 lost, parity held)"
            ),
        ),
    )
    BENCH_JSON_PATH.write_text(
        json.dumps(
            {
                "experiment": "E17_pool_routing",
                "usable_cpus": usable_cpus,
                "num_tables": len(tables),
                "num_columns": num_columns,
                "rounds": ROUNDS,
                "workers": POOL_WORKERS,
                "configurations": rows,
                "affinity_hit_rate": warm_stats.affinity_hit_rate,
                "warm_vs_round_robin_speedup": round(speedup, 3),
                "speedup_gate_armed": speedup_gate_armed,
                "parity": "bit-identical to serial on every leg",
                "kill_drill": {
                    "worker_deaths": drill_stats.worker_deaths,
                    "restarts": drill_stats.restarts,
                    "redispatches": drill_stats.redispatches,
                    "lost_requests": lost_requests,
                    "errors_total": drill_stats.errors_total,
                },
                "warm_stats": warm_stats.to_dict(),
                "round_robin_stats": rr_stats.to_dict(),
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )

    # Representative operation for pytest-benchmark: the per-request routing
    # decision — rendezvous hashing a table's column-hash prefixes over the
    # worker slots (the pure-CPU cost the dispatcher adds to every request).
    prefixes = [column.content_hash()[:8] for column in tables[0].columns]
    slots = list(range(POOL_WORKERS))

    def route_once():
        return [_rendezvous_slot(prefix, slots) for prefix in prefixes]

    benchmark(route_once)
