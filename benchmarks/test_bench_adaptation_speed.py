"""E5 (Section 5 evaluation plan): how rapidly the system adapts to a new domain.

A customer's data exhibits label shift (columns whose headers suggest one type
but whose values belong to another).  The experiment measures accuracy on the
customer's *shifted columns* as a function of the number of feedback
interactions, comparing the adaptive system against the frozen global model.
The expected shape: the frozen model stays flat and wrong; the adaptive system
climbs within a handful of corrections.
"""

from __future__ import annotations

import pytest

from repro.corpus import build_label_shift_corpus
from repro.evaluation import format_table


@pytest.fixture(scope="module")
def shift_corpus():
    return build_label_shift_corpus(num_tables=20, seed=501)


def _shifted_accuracy(sigmatyper, corpus, customer_id=None):
    """Accuracy restricted to the label-shifted columns."""
    correct = total = 0
    for table in corpus:
        prediction = sigmatyper.annotate(table, customer_id=customer_id)
        for column, column_prediction in zip(table.columns, prediction.columns):
            if "label_shift" not in column.metadata:
                continue
            total += 1
            if column_prediction.predicted_type == column.semantic_type:
                correct += 1
    return correct / total if total else 0.0


def test_adaptation_speed(benchmark, sigmatyper, shift_corpus, record_result):
    customer_id = "e5-adaptation"
    if customer_id not in sigmatyper.customer_ids:
        sigmatyper.register_customer(customer_id)

    # Feedback is given on the first few tables; accuracy is measured on the
    # remaining (never corrected) tables so the curve reflects generalisation.
    tables = list(shift_corpus)
    feedback_tables = tables[:8]
    from repro.corpus import TableCorpus

    holdout = TableCorpus(tables[8:], name="e5-holdout")

    frozen_accuracy = _shifted_accuracy(sigmatyper, holdout, customer_id=None)
    rows = [
        {
            "feedback_rounds": 0,
            "system": "frozen global model",
            "shifted_column_accuracy": round(frozen_accuracy, 3),
        }
    ]

    feedback_columns = [
        (table, column)
        for table in feedback_tables
        for column in table.columns
        if "label_shift" in column.metadata
    ]
    checkpoints = {1, 2, 3, 5, len(feedback_columns)}
    rounds = 0
    for table, column in feedback_columns:
        sigmatyper.give_feedback(customer_id, table, column.name, column.semantic_type)
        rounds += 1
        if rounds in checkpoints:
            accuracy = _shifted_accuracy(sigmatyper, holdout, customer_id=customer_id)
            rows.append(
                {
                    "feedback_rounds": rounds,
                    "system": "SigmaTyper (global + local)",
                    "shifted_column_accuracy": round(accuracy, 3),
                }
            )

    benchmark(sigmatyper.annotate, holdout[0], customer_id=customer_id)

    record_result(
        "E5_adaptation_speed",
        format_table(rows, title="E5 — accuracy on label-shifted columns vs. feedback rounds"),
    )

    final_accuracy = rows[-1]["shifted_column_accuracy"]
    assert final_accuracy >= frozen_accuracy, "adaptation must not be worse than the frozen model"
    assert final_accuracy >= 0.25, (
        "after all feedback rounds a substantial share of shifted columns should be corrected"
    )
