"""E13: shard transport — pickle vs zero-copy shared memory.

The multiprocess backend's per-shard overhead is serialization: the classic
path pickles whole tables out to the workers and whole prediction lists back.
This experiment measures the :mod:`repro.serving.transport` replacement —
shared-memory column blocks out, fixed-width prediction records back — against
the explicit pickle baseline on the same corpus.

Three properties are pinned:

* **bytes** — the shm transport ships at least **5× fewer pickled bytes per
  shard** than the pickle transport (it ships descriptors; the payload
  crosses in shared memory and is counted separately as ``shm_bytes``);
* **parity** — both transports return predictions bit-identical to the
  serial path, with zero pickle fallbacks on this corpus;
* **lifecycle** — every shared-memory segment created during the run is
  unlinked by the end of it; any survivor is printed as ``LEAKED SEGMENT
  <name>`` (the CI smoke job greps the run log for exactly that marker and
  scans ``/dev/shm``).

On machines with ≥ 4 usable CPUs the run additionally gates on the shm
transport not being slower end-to-end than the pickle transport (the shard
overhead it removes is serial time in the parent).  On the 1-CPU build
container that wall-clock comparison is physics-noise, so parity and the
bytes accounting are the assertions there — canonical caveat in
``docs/SERVING.md``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.corpus import GitTablesConfig, GitTablesGenerator
from repro.evaluation import format_table
from repro.serving import (
    MultiprocessBackend,
    PickleTransport,
    ShmTransport,
    available_workers,
    reset_transport_stats,
    transport_stats,
)
from repro.serving.transport import RESULT_SEGMENT_PREFIX, SHARD_SEGMENT_PREFIX

#: Machine-readable E13 results, committed at the repo root alongside the
#: other benchmark artifacts so the transport trajectory stays comparable.
BENCH_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_shard_transport.json"

#: Corpus size: small enough for a CI smoke run, large enough that each of
#: the 4 shards carries a meaningful payload.
TRANSPORT_TABLES = 120
WORKERS = 4

#: Acceptance bar: pickled bytes per shard, pickle transport vs shm.
BYTES_RATIO_BAR = 5.0


def _live_segments() -> list[str]:
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):  # pragma: no cover - non-Linux fallback
        return []
    return sorted(
        name
        for name in os.listdir(shm_dir)
        if name.startswith((SHARD_SEGMENT_PREFIX, RESULT_SEGMENT_PREFIX))
    )


@pytest.fixture(scope="module")
def transport_corpus():
    """A dedicated bulk-annotation corpus (distinct from the training seeds)."""
    return GitTablesGenerator(
        GitTablesConfig(num_tables=TRANSPORT_TABLES, seed=90210)
    ).generate_corpus()


def _fresh(tables):
    """Cold per-column caches, as every incoming request would carry."""
    return [table.copy() for table in tables]


def _comparable(predictions):
    """Prediction content without wall-clock timings (bit-exact floats)."""
    return [(p.table_name, p.step_trace, p.columns) for p in predictions]


def test_shard_transport(benchmark, sigmatyper, transport_corpus, record_result):
    reset_transport_stats()
    tables = list(transport_corpus)
    num_columns = sum(table.num_columns for table in tables)

    # Warm the model-level caches once so every configuration faces the same
    # model state; per-column caches stay cold per configuration.
    sigmatyper.annotate_corpus(_fresh(tables))

    started = time.perf_counter()
    reference = _comparable(sigmatyper.annotate_corpus(_fresh(tables)))
    serial_seconds = time.perf_counter() - started

    transports = [
        ("pickle", PickleTransport()),
        ("shm", ShmTransport()),
    ]
    rows = [
        {
            "transport": "(serial reference)",
            "seconds_total": round(serial_seconds, 3),
            "columns_per_second": round(num_columns / serial_seconds, 1),
            "bytes_shipped": 0,
            "bytes_per_shard": 0,
            "shm_bytes": 0,
            "pickle_fallbacks": 0,
        }
    ]
    elapsed_by_transport = {}
    stats_by_transport = {}
    for name, transport in transports:
        backend = MultiprocessBackend(WORKERS, transport=transport)
        batch = _fresh(tables)
        started = time.perf_counter()
        predictions = sigmatyper.annotate_corpus(batch, backend=backend)
        elapsed = time.perf_counter() - started
        assert _comparable(predictions) == reference, (
            f"{name} transport diverged from the serial path"
        )
        stats = transport.stats
        assert stats.shards == WORKERS
        elapsed_by_transport[name] = elapsed
        stats_by_transport[name] = stats
        rows.append(
            {
                "transport": f"multiprocess:{WORKERS}+{name}",
                "seconds_total": round(elapsed, 3),
                "columns_per_second": round(num_columns / elapsed, 1),
                "bytes_shipped": stats.bytes_shipped,
                "bytes_per_shard": round(stats.bytes_shipped / stats.shards),
                "shm_bytes": stats.shm_bytes,
                "pickle_fallbacks": stats.pickle_fallbacks,
            }
        )

    # Lifecycle: segments balance out and nothing survives in /dev/shm.  Leaks
    # are printed with a stable marker for the CI log grep.
    shm_stats = stats_by_transport["shm"]
    assert shm_stats.segments_created > 0
    assert shm_stats.segments_created == shm_stats.segments_unlinked
    leaked = _live_segments()
    for name in leaked:
        print(f"LEAKED SEGMENT {name}")
    assert not leaked, f"shared-memory segments leaked: {leaked}"

    # Fidelity: this corpus must ride the block codec, never the fallback.
    assert shm_stats.pickle_fallbacks == 0

    # The acceptance bar: ≥ 5× fewer pickled bytes per shard.
    pickle_per_shard = stats_by_transport["pickle"].bytes_shipped / WORKERS
    shm_per_shard = shm_stats.bytes_shipped / WORKERS
    bytes_ratio = pickle_per_shard / shm_per_shard
    assert bytes_ratio >= BYTES_RATIO_BAR, (
        f"expected the shm transport to ship >= {BYTES_RATIO_BAR}x fewer pickled "
        f"bytes per shard, got {bytes_ratio:.1f}x "
        f"({pickle_per_shard:.0f} vs {shm_per_shard:.0f} bytes)"
    )

    usable_cpus = available_workers()
    if usable_cpus >= 4:
        # With real cores, removing the serialization overhead must show up:
        # the shm run may not be slower than the pickle run beyond noise.
        assert elapsed_by_transport["shm"] <= elapsed_by_transport["pickle"] * 1.25, (
            f"shm transport slower than pickle with {usable_cpus} CPUs: "
            f"{elapsed_by_transport['shm']:.3f}s vs {elapsed_by_transport['pickle']:.3f}s"
        )

    record_result(
        "E13_shard_transport",
        format_table(
            rows,
            title=(
                f"E13 — shard transport over {len(tables)} tables / {num_columns} columns, "
                f"{WORKERS} workers, {usable_cpus} usable CPUs "
                f"(bytes ratio {bytes_ratio:.1f}x, bar {BYTES_RATIO_BAR:.0f}x)"
            ),
        ),
    )
    BENCH_JSON_PATH.write_text(
        json.dumps(
            {
                "experiment": "E13_shard_transport",
                "usable_cpus": usable_cpus,
                "num_tables": len(tables),
                "num_columns": num_columns,
                "workers": WORKERS,
                "configurations": rows,
                "bytes_per_shard_ratio": round(bytes_ratio, 2),
                "bytes_ratio_bar": BYTES_RATIO_BAR,
                "leaked_segments": leaked,
                "transport_stats": transport_stats(),
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )

    # Representative operation for pytest-benchmark: flattening one shard of
    # tables into a column block (the parent-side cost the shm path adds).
    from repro.serving import ColumnBlockCodec

    shard = tables[: max(1, len(tables) // WORKERS)]
    benchmark(ColumnBlockCodec.encode_tables, shard)
