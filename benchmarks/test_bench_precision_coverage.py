"""E6 (Section 2.3): the precision / coverage trade-off and the τ operating point.

The paper argues that a practical system must balance precision with coverage
and "infer a parameter τ and threshold predictions that are below τ such that
the precision of the system is high".  This experiment sweeps τ over the
held-out corpus, reports the precision–coverage curve, and shows the operating
point chosen by the calibration routine for a 95% precision target.
"""

from __future__ import annotations

from repro.core.aggregation import calibrate_tau
from repro.evaluation import format_table, precision_coverage_curve
from repro.evaluation.harness import PredictionRecord


def _collect_records(sigmatyper, corpus):
    records = []
    original_tau = sigmatyper.tau
    sigmatyper.set_tau(0.0)
    try:
        for table in corpus:
            prediction = sigmatyper.annotate(table)
            for column, column_prediction in zip(table.columns, prediction.columns):
                if column.semantic_type is None:
                    continue
                records.append(
                    PredictionRecord(
                        gold_type=column.semantic_type,
                        predicted_type=column_prediction.predicted_type,
                        confidence=column_prediction.confidence,
                        abstained=column_prediction.abstained,
                        table_name=table.name,
                        column_name=column.name,
                    )
                )
    finally:
        sigmatyper.set_tau(original_tau)
    return records


def test_precision_coverage_tradeoff(benchmark, sigmatyper, test_corpus, record_result):
    records = _collect_records(sigmatyper, test_corpus)

    taus = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99]
    curve = precision_coverage_curve(records, taus=taus)

    calibrated_tau = calibrate_tau(
        [(record.confidence, record.predicted_type == record.gold_type) for record in records if record.attempted],
        target_precision=0.95,
    )

    rows = [
        {
            "tau": point["tau"],
            "coverage": point["coverage"],
            "precision": point["precision"],
            "selected": "  <-- calibrated τ (95% precision target)"
            if abs(point["tau"] - round(calibrated_tau, 2)) < 0.051 and point["tau"] >= calibrated_tau - 0.05
            else "",
        }
        for point in curve
    ]

    benchmark(precision_coverage_curve, records, taus)

    record_result(
        "E6_precision_coverage",
        format_table(rows, title=f"E6 — precision/coverage vs τ (calibrated τ = {calibrated_tau:.2f})"),
    )

    coverages = [point["coverage"] for point in curve]
    precisions = [point["precision"] for point in curve]
    # Shape: coverage decreases monotonically with τ; precision at high τ is at
    # least as good as at τ=0.
    assert coverages == sorted(coverages, reverse=True)
    assert max(precisions[-4:]) >= precisions[0] - 1e-9
    assert 0.0 <= calibrated_tau <= 1.0
