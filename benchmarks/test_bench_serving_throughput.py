"""E11: serving throughput — execution backends over bulk annotation.

The deployment the paper targets is a multi-tenant service annotating
customer tables online.  This experiment measures the serving layer built for
that setting: ``SigmaTyper.annotate_corpus`` sharded across the ``serial``,
``threaded``, and ``multiprocess`` execution backends at several worker
counts, plus the shared content-hash :class:`ProfileStore` that lets
short-lived tables reuse warm derived state.

Two properties are pinned:

* **parity** — every backend (and the store-backed cache) returns predictions
  bit-identical to the serial path;
* **throughput** — with enough usable CPUs (≥ 4), the best parallel backend
  beats the serial path by at least 2×.  The speedup assertion scales down on
  constrained machines (a single-core container cannot speed up CPU-bound
  work by forking), but the measured numbers and the CPU budget are always
  recorded in ``BENCH_serving_throughput.json`` at the repo root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.corpus import GitTablesConfig, GitTablesGenerator
from repro.evaluation import format_table
from repro.serving import ProfileStore, available_workers

#: Machine-readable E11 results, committed at the repo root alongside the E10
#: artifact so the serving-throughput trajectory stays comparable across PRs.
BENCH_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_serving_throughput.json"

#: Corpus size: large enough that per-shard work dominates pool/pickle
#: overhead, small enough for a CI smoke run.
SERVING_TABLES = 160


@pytest.fixture(scope="module")
def serving_corpus():
    """A dedicated bulk-annotation corpus (distinct from the training seeds)."""
    return GitTablesGenerator(
        GitTablesConfig(num_tables=SERVING_TABLES, seed=31337)
    ).generate_corpus()


def _fresh(tables):
    """Cold per-column caches, as every incoming request would carry."""
    return [table.copy() for table in tables]


def _comparable(predictions):
    """Prediction content without wall-clock timings (bit-exact floats)."""
    return [(p.table_name, p.step_trace, p.columns) for p in predictions]


def test_serving_throughput(benchmark, sigmatyper, serving_corpus, record_result):
    tables = list(serving_corpus)
    num_columns = sum(table.num_columns for table in tables)

    # Warm the model-level caches (embedder phrases, shape masks) once so
    # every configuration faces the same model state; per-column caches stay
    # cold per configuration because each gets fresh table copies.
    sigmatyper.annotate_corpus(_fresh(tables))

    configurations = [
        ("serial", 1, None),
        ("threaded", 2, "threaded:2"),
        ("threaded", 4, "threaded:4"),
        ("multiprocess", 2, "multiprocess:2"),
        ("multiprocess", 4, "multiprocess:4"),
    ]

    rows = []
    reference = None
    serial_seconds = None
    for backend_name, workers, backend in configurations:
        batch = _fresh(tables)
        started = time.perf_counter()
        predictions = sigmatyper.annotate_corpus(batch, backend=backend)
        elapsed = time.perf_counter() - started
        if reference is None:
            reference = _comparable(predictions)
            serial_seconds = elapsed
        else:
            # Parity: sharded execution must be bit-identical to serial.
            assert _comparable(predictions) == reference, (
                f"{backend_name}:{workers} diverged from the serial path"
            )
        rows.append(
            {
                "backend": backend_name,
                "workers": workers,
                "seconds_total": round(elapsed, 3),
                "columns_per_second": round(num_columns / elapsed, 1),
                "speedup_vs_serial": round(serial_seconds / elapsed, 2),
            }
        )

    # The shared profile store: a second wave of short-lived tables with
    # recurring content reuses warm derived state instead of recomputing it.
    store = ProfileStore(max_columns=8192)
    with store.activated():
        sigmatyper.annotate_corpus(_fresh(tables))
        started = time.perf_counter()
        warm_predictions = sigmatyper.annotate_corpus(_fresh(tables))
        warm_elapsed = time.perf_counter() - started
    assert _comparable(warm_predictions) == reference, "profile store changed predictions"
    store_row = {
        "backend": "serial + warm ProfileStore",
        "workers": 1,
        "seconds_total": round(warm_elapsed, 3),
        "columns_per_second": round(num_columns / warm_elapsed, 1),
        "speedup_vs_serial": round(serial_seconds / warm_elapsed, 2),
    }
    rows.append(store_row)

    usable_cpus = available_workers()
    record_result(
        "E11_serving_throughput",
        format_table(
            rows,
            title=(
                f"E11 — serving throughput by execution backend "
                f"({len(tables)} tables, {num_columns} columns, {usable_cpus} usable CPUs)"
            ),
        ),
    )
    BENCH_JSON_PATH.write_text(
        json.dumps(
            {
                "experiment": "E11_serving_throughput",
                "usable_cpus": usable_cpus,
                "num_tables": len(tables),
                "num_columns": num_columns,
                "configurations": rows,
                "profile_store": store.stats(),
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )

    # A representative serving operation for pytest-benchmark's timing stats:
    # one warm bulk call over a small slice.
    warm_slice = tables[:5]
    benchmark(sigmatyper.annotate_corpus, warm_slice)

    # The warm store must actually be reused for the second wave.
    assert store.hits > 0 and store.hit_rate > 0.4

    # Throughput: scaled to the machine's actual parallelism budget.  The
    # acceptance bar (≥ 2× on ≥ 4 workers) applies when the hardware can
    # physically deliver it; parity above is asserted unconditionally.
    best_parallel = max(
        row["speedup_vs_serial"]
        for row in rows
        if row["backend"] in ("threaded", "multiprocess")
    )
    if usable_cpus >= 4:
        assert best_parallel >= 2.0, (
            f"expected >= 2x speedup with {usable_cpus} CPUs, got {best_parallel}x"
        )
    elif usable_cpus >= 2:
        assert best_parallel >= 1.2, (
            f"expected >= 1.2x speedup with {usable_cpus} CPUs, got {best_parallel}x"
        )
