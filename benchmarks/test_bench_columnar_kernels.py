"""E15: block-native columnar kernels — vectorized profiling & featurization.

Serving hands workers their shard as typed column blocks (E13); before this
experiment the hot path still rebuilt Python values out of those buffers and
profiled them one cell at a time.  The :mod:`repro.core.colblock` kernels run
the same statistics as vectorized numpy passes directly over the block's
tag/offset/blob arrays.  This experiment measures both paths on the *same*
decoded blocks:

* **rebuild path** — kernels disabled: columns decode their cells back into
  Python objects and the seed per-value profiler/featurizer runs;
* **block-native path** — kernels enabled: profiling and featurization read
  the transport buffers through :class:`~repro.core.colblock.ColumnView`.

Three properties are pinned:

* **throughput** — profiling + featurization runs at least **3× faster**
  block-native than on the rebuild path (vectorization, not parallelism:
  the gate holds on a 1-CPU container);
* **parity** — end-to-end predictions are bit-identical between the two
  paths (same floats, same ranking, same step traces);
* **fallbacks** — on this corpus the only tolerated kernel fallback reason
  is ``non-ascii text`` (the generator's accented city names — see the
  ASCII-fast-path caveat in ``docs/SERVING.md``).  Any other reason, or any
  encode fallback, is printed as ``UNEXPECTED KERNEL FALLBACK <reason>``
  and fails the run (the CI smoke job greps the log for that marker).
"""

from __future__ import annotations

import gc
import json
import time
from pathlib import Path

import pytest

from repro.core import colblock
from repro.core.table import Table
from repro.core.timings import reset_stage_timings
from repro.corpus import GitTablesConfig, GitTablesGenerator
from repro.evaluation import format_table
from repro.profiler.statistics import profile_column
from repro.serving import ColumnBlockCodec

#: Machine-readable E15 results, committed at the repo root alongside the
#: other benchmark artifacts so the kernel trajectory stays comparable.
BENCH_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_columnar_kernels.json"

#: Serving-scale shard: few tables, long columns — the regime the kernels
#: target (vectorization amortizes per-column setup over many cells).
KERNEL_TABLES = 10
MIN_ROWS = 3000
MAX_ROWS = 5000

#: Acceptance bar: profiling+featurization speedup, block-native vs rebuild.
SPEEDUP_BAR = 3.0

#: Timing repeats per path.  The legs are interleaved (rebuild, native,
#: rebuild, native, ...) and the per-leg minimum is taken, so a transient
#: load spike on a shared 1-CPU container cannot inflate one leg's every
#: sample.  A first untimed pass per leg warms the process-wide caches —
#: subword embedder, shape masks, type signatures — so both paths face
#: identical cache state.
REPEATS = 5

#: Fallback reasons this corpus is allowed to produce (accented city names).
EXPECTED_FALLBACK_REASONS = {"non-ascii text"}


@pytest.fixture(scope="module")
def kernel_payload():
    """The corpus, encoded once into the transport's column-block bytes."""
    corpus = GitTablesGenerator(
        GitTablesConfig(
            num_tables=KERNEL_TABLES, seed=424242, min_rows=MIN_ROWS, max_rows=MAX_ROWS
        )
    ).generate_corpus()
    return bytes(ColumnBlockCodec.encode_tables(list(corpus)))


def _decode_tables(payload: bytes) -> list[Table]:
    """Fresh tables over a fresh block: cold memos, exactly as a worker sees."""
    block = ColumnBlockCodec.decode(payload)
    return [Table.from_block(block, index) for index in range(block.num_tables)]


def _profile_and_featurize(tables: list[Table], featurizer) -> int:
    """The serving hot loop: profile every column, featurize every table."""
    num_columns = 0
    for table in tables:
        for column in table.columns:
            profile_column(column)
        featurizer.extract_many([(column, table) for column in table.columns])
        num_columns += table.num_columns
    return num_columns


def _timed_pass(payload: bytes, featurizer, kernels: bool) -> tuple[float, int]:
    colblock.set_kernels_enabled(kernels)
    try:
        tables = _decode_tables(payload)
        # Deterministic heap state: the previous pass's tables (and their
        # memoized profiles) are collected outside the timed region.
        gc.collect()
        started = time.perf_counter()
        num_columns = _profile_and_featurize(tables, featurizer)
        return time.perf_counter() - started, num_columns
    finally:
        colblock.set_kernels_enabled(True)


def _comparable(predictions):
    """Prediction content without wall-clock timings (bit-exact floats)."""
    return [(p.table_name, p.step_trace, p.columns) for p in predictions]


def test_columnar_kernels(benchmark, sigmatyper, kernel_payload, record_result):
    featurizer = sigmatyper.global_model.classifier.featurizer
    payload = kernel_payload

    colblock.reset_kernel_stats()
    reset_stage_timings()

    # Warm the process-wide caches once per path so the timed passes compare
    # kernel arithmetic, not cache population.
    _timed_pass(payload, featurizer, kernels=False)
    _timed_pass(payload, featurizer, kernels=True)

    rebuild_seconds = float("inf")
    native_seconds = float("inf")
    num_columns = 0
    for _ in range(REPEATS):
        rebuild_seconds = min(
            rebuild_seconds, _timed_pass(payload, featurizer, kernels=False)[0]
        )
        seconds, num_columns = _timed_pass(payload, featurizer, kernels=True)
        native_seconds = min(native_seconds, seconds)
    speedup = rebuild_seconds / native_seconds

    # End-to-end parity: the full cascade over the same decoded blocks must
    # produce bit-identical predictions with kernels on and off.
    colblock.set_kernels_enabled(False)
    try:
        reference = _comparable(sigmatyper.annotate_corpus(_decode_tables(payload)))
    finally:
        colblock.set_kernels_enabled(True)
    native_predictions = _comparable(sigmatyper.annotate_corpus(_decode_tables(payload)))
    assert native_predictions == reference, (
        "block-native kernels diverged from the per-value path"
    )

    # Fallback audit: only the documented non-ASCII reason is tolerated here.
    stats = colblock.kernel_stats()
    unexpected = {
        reason: count
        for reason, count in stats["fallback_reasons"].items()
        if reason not in EXPECTED_FALLBACK_REASONS
    }
    if stats["encode_fallbacks"]:
        unexpected["encode fallback"] = stats["encode_fallbacks"]
    for reason, count in sorted(unexpected.items()):
        print(f"UNEXPECTED KERNEL FALLBACK {reason} x{count}")
    assert not unexpected, f"unexpected kernel fallbacks: {unexpected}"

    assert speedup >= SPEEDUP_BAR, (
        f"expected block-native profiling+featurization to be >= {SPEEDUP_BAR}x "
        f"faster than the rebuild path, got {speedup:.2f}x "
        f"({rebuild_seconds:.3f}s vs {native_seconds:.3f}s)"
    )

    summary = sigmatyper.summary()
    timings = summary["timings"]
    rows = [
        {
            "path": "rebuild (kernels off)",
            "seconds_total": round(rebuild_seconds, 3),
            "columns_per_second": round(num_columns / rebuild_seconds, 1),
        },
        {
            "path": "block-native (kernels on)",
            "seconds_total": round(native_seconds, 3),
            "columns_per_second": round(num_columns / native_seconds, 1),
        },
    ]
    record_result(
        "E15_columnar_kernels",
        format_table(
            rows,
            title=(
                f"E15 — columnar kernels over {KERNEL_TABLES} tables / "
                f"{num_columns} columns x {MIN_ROWS}-{MAX_ROWS} rows "
                f"(speedup {speedup:.2f}x, bar {SPEEDUP_BAR:.0f}x, "
                f"hits {stats['kernel_hits']}, fallbacks {stats['kernel_fallbacks']})"
            ),
        ),
    )
    BENCH_JSON_PATH.write_text(
        json.dumps(
            {
                "experiment": "E15_columnar_kernels",
                "num_tables": KERNEL_TABLES,
                "num_columns": num_columns,
                "min_rows": MIN_ROWS,
                "max_rows": MAX_ROWS,
                "configurations": rows,
                "speedup": round(speedup, 2),
                "speedup_bar": SPEEDUP_BAR,
                "kernel_stats": stats,
                "stage_timings": timings,
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )

    # Representative operation for pytest-benchmark: the vectorized profile
    # kernel over the largest column's view (pure function, no memo).
    tables = _decode_tables(payload)
    largest = max(
        (column for table in tables for column in table.columns),
        key=lambda column: len(column.values),
    )
    view = largest._kernel_view()
    assert view is not None
    benchmark(
        colblock.kernel_profile, view, largest.name, largest.data_type, 5, 5
    )
