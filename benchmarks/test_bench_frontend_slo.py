"""E14: SLO-aware front end under sustained overload.

The serving front end exists so that overload is a managed state instead of
an unbounded queue.  This experiment drives the full HTTP edge — admission
control, bounded pending queues, deadline propagation, and the SLO
controller stepping the cascade confidence threshold c — at roughly 2× the
measured serial capacity, and pins four properties:

* **explicit shedding** — excess load is rejected with typed 429s carrying a
  retry-after hint; nothing queues forever, and every *accepted* request
  succeeds (zero 5xx/504 among admitted traffic);
* **bounded tail latency** — the global pending bound is sized to the SLO
  budget, so an admitted request's queue wait is bounded by construction;
  on machines with ≥ 4 usable CPUs the accepted-traffic p99 must stay
  within the budget (the 1-CPU caveat in ``docs/SERVING.md`` applies: on a
  single core the load generator and the service contend for the same CPU,
  so latency gates only record);
* **parity when unloaded** — light traffic through the HTTP edge returns
  predictions bit-identical to calling ``SigmaTyper.annotate`` directly;
* **bounded drain** — SIGTERM stops the listener, flushes in-flight work
  within the drain budget, and leaves no running asyncio tasks behind
  (leaks are printed with a ``LEAKED`` marker for the CI grep).

Results go to ``BENCH_frontend_slo.json`` at the repo root and
``benchmarks/results/E14_frontend_slo.txt``.
"""

from __future__ import annotations

import asyncio
import json
import math
import os
import signal
import time
from pathlib import Path

import pytest

from repro.corpus import GitTablesConfig, GitTablesGenerator
from repro.evaluation import format_table
from repro.serving import AnnotationFrontend, AnnotationService, FrontendConfig, SloConfig
from repro.serving.backends import available_workers

#: Machine-readable E14 results, committed at the repo root alongside the
#: other BENCH_*.json artifacts so the overload behaviour stays comparable.
BENCH_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_frontend_slo.json"

#: Request tables: enough variety that per-request work is realistic, small
#: enough that the capacity probe stays cheap.
LOAD_TABLES = 24
#: Seconds of sustained overload.
OVERLOAD_SECONDS = 3.0
#: Offered load as a multiple of measured serial capacity.
OVERLOAD_FACTOR = 2.0
#: Concurrent keep-alive client connections generating the load.
CLIENT_WORKERS = 12
#: Seconds SIGTERM may take to drain the edge and the service.
DRAIN_BUDGET = 2.0


@pytest.fixture(scope="module")
def load_corpus():
    return GitTablesGenerator(GitTablesConfig(num_tables=LOAD_TABLES, seed=424242)).generate_corpus()


def _comparable(prediction_dict: dict) -> dict:
    """Prediction content without wall-clock timings (bit-exact floats)."""
    return {key: value for key, value in prediction_dict.items() if key != "step_seconds"}


def _percentile(samples: list[float], p: float) -> float:
    ordered = sorted(samples)
    return ordered[max(0, math.ceil(p * len(ordered)) - 1)]


async def _http_post(host, port, body: bytes, connection=None):
    """One keep-alive POST /annotate; returns (status, headers, payload, connection)."""
    if connection is None:
        connection = await asyncio.open_connection(host, port)
    reader, writer = connection
    writer.write(
        b"POST /annotate HTTP/1.1\r\nHost: bench\r\nContent-Length: "
        + str(len(body)).encode()
        + b"\r\n\r\n"
        + body
    )
    await writer.drain()
    status = int((await reader.readline()).split()[1])
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode().partition(":")
        headers[name.strip().lower()] = value.strip()
    payload = await reader.readexactly(int(headers.get("content-length", "0")))
    return status, headers, json.loads(payload) if payload else None, connection


async def _offer_load(host, port, bodies: list[bytes], offered_rate: float, duration: float):
    """Open-loop load: CLIENT_WORKERS connections offering ``offered_rate`` req/s."""
    loop = asyncio.get_running_loop()
    stop_at = loop.time() + duration
    interval = CLIENT_WORKERS / offered_rate
    results: list[tuple[int | str, float, str | None]] = []

    async def client(worker_index: int) -> None:
        connection = None
        request_index = worker_index
        next_at = loop.time() + worker_index * (interval / CLIENT_WORKERS)
        while True:
            now = loop.time()
            if now >= stop_at:
                break
            if next_at > now:
                await asyncio.sleep(min(next_at, stop_at) - now)
                if loop.time() >= stop_at:
                    break
            body = bodies[request_index % len(bodies)]
            request_index += CLIENT_WORKERS
            started = loop.time()
            try:
                status, headers, _, connection = await _http_post(
                    host, port, body, connection=connection
                )
            except (ConnectionError, OSError, asyncio.IncompleteReadError):
                connection = None
                results.append(("transport_error", loop.time() - started, None))
                continue
            results.append((status, loop.time() - started, headers.get("retry-after")))
            next_at += interval
        if connection is not None:
            connection[1].close()

    await asyncio.gather(*[client(index) for index in range(CLIENT_WORKERS)])
    return results


def test_frontend_slo_overload(benchmark, sigmatyper, load_corpus, record_result):
    tables = list(load_corpus)

    # ------------------------------------------------- capacity probe (serial)
    # Warm model-level caches once, then measure the steady serial rate the
    # admission knobs are sized against.
    for table in tables:
        sigmatyper.annotate(table.copy())
    started = time.perf_counter()
    for table in tables:
        sigmatyper.annotate(table.copy())
    serial_seconds = time.perf_counter() - started
    seconds_per_table = serial_seconds / len(tables)
    capacity_per_second = 1.0 / seconds_per_table

    # The SLO budget is a small multiple of the serial service time; the
    # global pending bound is sized to half the budget so the worst admitted
    # request's queue wait stays inside it by construction.
    latency_budget = max(0.25, 8.0 * seconds_per_table)
    max_pending = max(4, int(capacity_per_second * latency_budget * 0.5))
    baseline_c = sigmatyper.confidence_threshold

    bodies = [json.dumps({"table": table.to_dict()}).encode() for table in tables]

    # --------------------------------------------- capacity probe (HTTP path)
    # The rate the edge can actually sustain is lower than raw ``annotate``
    # throughput (JSON parse, table revival, socket work, and — on small
    # machines — the load generator itself competing for CPU).  Admission is
    # sized against this measured rate, not the serial one, so the overload
    # phase genuinely overloads.
    http_capacity = _measure_http_capacity(sigmatyper, bodies, capacity_per_second)
    tenant_rate = 0.75 * http_capacity

    slo = SloConfig(
        latency_budget=latency_budget,
        percentile=0.99,
        window=64,
        min_samples=8,
        cooldown=2.0 * latency_budget,
        step=0.05,
        min_confidence_threshold=0.60,
    )
    config = FrontendConfig(
        # The token bucket is the binding admission constraint: it admits a
        # sustainable fraction of the measured HTTP capacity, and everything
        # past it is shed.  The pending bounds back it up.
        tenant_rate=tenant_rate,
        tenant_burst=16.0,
        max_pending_total=max_pending,
        max_pending_per_tenant=max_pending,
        drain_timeout=DRAIN_BUDGET,
        # Every request carries a generous default budget: admitted traffic
        # must finish, far-over-budget stragglers must not hang a client.
        default_deadline=max(30.0, 40.0 * latency_budget),
    )

    expected = [
        json.loads(json.dumps(sigmatyper.annotate(table.copy()).to_dict())) for table in tables
    ]

    loop = asyncio.new_event_loop()
    service = AnnotationService(sigmatyper, max_batch_delay=0.0, slo=slo)
    frontend = AnnotationFrontend(service, config)
    phases: dict[str, object] = {}

    try:
        host, port = loop.run_until_complete(_start(frontend))

        # ------------------------------------------ phase 1: unloaded parity
        unloaded = loop.run_until_complete(_unloaded_pass(host, port, bodies))
        for (status, payload), reference in zip(unloaded, expected):
            assert status == 200
            assert _comparable(payload) == _comparable(reference), (
                "unloaded HTTP traffic diverged from the serial path"
            )
        assert not service.slo.is_degraded
        phases["unloaded"] = {
            "requests": len(unloaded),
            "bit_identical_to_serial": True,
        }

        # ------------------------------------- phase 2: sustained 2× overload
        offered_rate = OVERLOAD_FACTOR * http_capacity
        outcomes = loop.run_until_complete(
            _offer_load(host, port, bodies, offered_rate, OVERLOAD_SECONDS)
        )
        accepted = [(s, latency) for s, latency, _ in outcomes if s == 200]
        shed = [(s, latency, retry) for s, latency, retry in outcomes if s == 429]
        other = [s for s, _, _ in outcomes if s not in (200, 429)]

        # Overload correctness asserts everywhere: excess load is shed with
        # explicit retry-after rejections, and no accepted request fails.
        assert outcomes, "load generator produced no requests"
        assert shed, "2x overload produced no shed requests"
        assert all(retry is not None and float(retry) > 0 for _, _, retry in shed), (
            "shed responses must carry a positive Retry-After"
        )
        assert not other, f"accepted requests failed under overload: statuses {sorted(set(other))}"
        assert accepted, "overload shed everything; nothing was served"
        assert frontend.stats.failed == 0
        assert frontend.stats.shed_total == len(shed)
        assert service.stats.shed_total == len(shed)

        p99_accepted = _percentile([latency for _, latency in accepted], 0.99)
        p50_accepted = _percentile([latency for _, latency in accepted], 0.50)
        slo_snapshot = service.slo.snapshot()
        phases["overload"] = {
            "offered_rate_per_second": round(offered_rate, 1),
            "duration_seconds": OVERLOAD_SECONDS,
            "requests_offered": len(outcomes),
            "accepted": len(accepted),
            "shed": len(shed),
            "shed_rate_limited": frontend.stats.shed_rate_limited,
            "shed_queue_full": frontend.stats.shed_queue_full,
            "p50_accepted_seconds": round(p50_accepted, 4),
            "p99_accepted_seconds": round(p99_accepted, 4),
            "latency_budget_seconds": round(latency_budget, 4),
            "degraded_batches": service.stats.degraded_batches,
            "slo": slo_snapshot,
        }

        usable_cpus = available_workers()
        if usable_cpus >= 4:
            # With real parallel headroom the load generator does not steal
            # the service's CPU, so the latency gate arms: the pending bound
            # plus SLO degradation must keep the accepted p99 inside budget.
            assert p99_accepted <= latency_budget, (
                f"accepted p99 {p99_accepted:.3f}s breached the "
                f"{latency_budget:.3f}s budget with {usable_cpus} CPUs"
            )

        # -------------------------------- phase 3: recovery back to baseline
        # Light traffic drains the window; c must recover to the baseline
        # (or never have left it, if shedding alone held the budget).
        recovery = loop.run_until_complete(_recovery_pass(host, port, bodies, service))
        assert sigmatyper.confidence_threshold == pytest.approx(baseline_c), (
            "confidence threshold did not recover to baseline after the overload drained"
        )
        phases["recovery"] = recovery

        # ----------------------- phase 4: cascade degradation under breach
        # Admission sizing above keeps the queue inside the budget, so the
        # SLO controller may never need to act.  This probe opens the
        # admission valves (huge pending bound, tight budget) on a second
        # front end over the same typer, fires a burst that must breach, and
        # asserts the controller steps c down, batches run degraded, and c
        # recovers to the baseline once the burst drains.
        probe = loop.run_until_complete(
            _degrade_probe(sigmatyper, bodies, seconds_per_table)
        )
        assert probe["degrade_transitions"] >= 1, (
            "a breaching burst did not trigger cascade degradation"
        )
        assert probe["degraded_batches"] >= 1
        assert probe["recovered"], "c did not recover to baseline after the burst drained"
        assert sigmatyper.confidence_threshold == pytest.approx(baseline_c)
        phases["degrade_probe"] = probe

        # A representative online operation for pytest-benchmark: one warm
        # HTTP round trip on a persistent connection, unloaded.  It runs
        # against a rate-unlimited front end — the timing loop itself would
        # otherwise trip the main front end's token bucket, which is tuned
        # to shed exactly this kind of full-speed closed loop.
        bench_service = AnnotationService(sigmatyper, max_batch_delay=0.0)
        bench_frontend = AnnotationFrontend(bench_service, FrontendConfig())
        bench_host, bench_port = loop.run_until_complete(_start(bench_frontend))
        state: dict[str, object] = {"connection": None}

        def round_trip():
            async def call():
                status, _, _, state["connection"] = await _http_post(
                    bench_host, bench_port, bodies[0], connection=state["connection"]
                )
                assert status == 200

            loop.run_until_complete(call())

        try:
            benchmark(round_trip)
        finally:
            if state["connection"] is not None:
                state["connection"][1].close()
            loop.run_until_complete(bench_frontend.shutdown(drain_timeout=DRAIN_BUDGET))

        # ------------------------------------------ phase 5: SIGTERM drain
        drain = loop.run_until_complete(_sigterm_drain(frontend, host, port, bodies))
        assert drain["drain_seconds"] <= DRAIN_BUDGET + 0.5, (
            f"SIGTERM drain took {drain['drain_seconds']:.2f}s "
            f"(budget {DRAIN_BUDGET:.2f}s)"
        )
        if drain["leaked_tasks"]:
            for name in drain["leaked_tasks"]:
                print(f"LEAKED asyncio task after drain: {name}")
        assert not drain["leaked_tasks"], "drain left asyncio tasks running"
        assert not frontend.is_running and not service.is_running
        phases["drain"] = drain
    finally:
        if frontend.is_running:
            loop.run_until_complete(frontend.shutdown(drain_timeout=DRAIN_BUDGET))
        loop.run_until_complete(loop.shutdown_asyncgens())
        loop.run_until_complete(loop.shutdown_default_executor())
        loop.close()

    # ------------------------------------------------------------- artifacts
    usable_cpus = available_workers()
    overload = phases["overload"]
    rows = [
        {
            "phase": "unloaded",
            "requests": phases["unloaded"]["requests"],
            "accepted": phases["unloaded"]["requests"],
            "shed": 0,
            "p99_seconds": "-",
            "note": "bit-identical to serial",
        },
        {
            "phase": f"overload x{OVERLOAD_FACTOR:g}",
            "requests": overload["requests_offered"],
            "accepted": overload["accepted"],
            "shed": overload["shed"],
            "p99_seconds": overload["p99_accepted_seconds"],
            "note": (
                f"budget {overload['latency_budget_seconds']}s, "
                f"{overload['degraded_batches']} degraded batches"
            ),
        },
        {
            "phase": "degrade probe",
            "requests": phases["degrade_probe"]["burst_size"],
            "accepted": phases["degrade_probe"]["burst_size"],
            "shed": 0,
            "p99_seconds": phases["degrade_probe"]["p99_burst_seconds"],
            "note": (
                f"budget {phases['degrade_probe']['latency_budget_seconds']}s, "
                f"c {phases['degrade_probe']['baseline_confidence_threshold']}"
                f" -> {phases['degrade_probe']['min_confidence_threshold_reached']}"
                f" -> recovered"
            ),
        },
        {
            "phase": "drain (SIGTERM)",
            "requests": "-",
            "accepted": "-",
            "shed": "-",
            "p99_seconds": phases["drain"]["drain_seconds"],
            "note": f"budget {DRAIN_BUDGET}s, 0 leaked tasks",
        },
    ]
    record_result(
        "E14_frontend_slo",
        format_table(
            rows,
            title=(
                f"E14 — SLO-aware front end under sustained overload "
                f"(capacity {capacity_per_second:.1f} req/s serial, {usable_cpus} usable CPUs)"
            ),
        ),
    )
    BENCH_JSON_PATH.write_text(
        json.dumps(
            {
                "experiment": "E14_frontend_slo",
                "usable_cpus": usable_cpus,
                "latency_gate_armed": usable_cpus >= 4,
                "serial_capacity_per_second": round(capacity_per_second, 1),
                "serial_seconds_per_table": round(seconds_per_table, 5),
                "http_capacity_per_second": round(http_capacity, 1),
                "tenant_rate_per_second": round(tenant_rate, 1),
                "max_pending_total": max_pending,
                "baseline_confidence_threshold": baseline_c,
                "phases": phases,
                "frontend_stats": frontend.stats.to_dict(),
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )


def _measure_http_capacity(sigmatyper, bodies, serial_capacity: float) -> float:
    """Closed-loop rate through an unlimited front end (requests/second)."""

    async def probe() -> float:
        service = AnnotationService(sigmatyper, max_batch_delay=0.0)
        frontend = AnnotationFrontend(service, FrontendConfig())
        try:
            await frontend.start()
            host, port = frontend.address
            # Warm-up, then measure a short closed-loop run with pacing far
            # above anything the workers can achieve.
            await _offer_load(host, port, bodies, 10.0 * serial_capacity, 0.5)
            started = asyncio.get_running_loop().time()
            outcomes = await _offer_load(host, port, bodies, 10.0 * serial_capacity, 1.5)
            elapsed = asyncio.get_running_loop().time() - started
            assert all(status == 200 for status, _, _ in outcomes)
            return len(outcomes) / elapsed
        finally:
            await frontend.shutdown(drain_timeout=DRAIN_BUDGET)

    return asyncio.run(probe())


async def _start(frontend: AnnotationFrontend):
    await frontend.start()
    return frontend.address


async def _unloaded_pass(host, port, bodies):
    connection = None
    results = []
    for body in bodies:
        status, _, payload, connection = await _http_post(host, port, body, connection=connection)
        results.append((status, payload))
    connection[1].close()
    return results


async def _recovery_pass(host, port, bodies, service):
    """Trickle light traffic until the SLO controller reports recovery."""
    connection = None
    sent = 0
    deadline = asyncio.get_running_loop().time() + 30.0
    while service.slo.is_degraded and asyncio.get_running_loop().time() < deadline:
        status, _, _, connection = await _http_post(
            host, port, bodies[sent % len(bodies)], connection=connection
        )
        assert status == 200
        sent += 1
        await asyncio.sleep(0.01)
    if connection is not None:
        connection[1].close()
    return {
        "trickle_requests": sent,
        "recovered": not service.slo.is_degraded,
        "transitions": service.slo.snapshot()["transitions"],
    }


async def _degrade_probe(sigmatyper, bodies, seconds_per_table: float):
    """Force an SLO breach and observe c step down, then recover."""
    budget = max(0.1, 4.0 * seconds_per_table)
    # Enough simultaneous admitted requests that the tail's queue wait alone
    # is several budgets deep — the breach is structural, not a timing race.
    burst_size = max(64, int(math.ceil(4.0 * budget / seconds_per_table)))
    slo = SloConfig(
        latency_budget=budget,
        percentile=0.99,
        window=32,
        min_samples=8,
        cooldown=0.1,
        step=0.05,
        min_confidence_threshold=0.60,
    )
    service = AnnotationService(sigmatyper, max_batch_delay=0.0, slo=slo)
    frontend = AnnotationFrontend(
        service,
        FrontendConfig(max_pending_total=4096, max_pending_per_tenant=4096),
    )
    baseline = sigmatyper.confidence_threshold
    host, port = None, None
    try:
        await frontend.start()
        host, port = frontend.address
        loop = asyncio.get_running_loop()

        async def one(index: int) -> float:
            started = loop.time()
            status, _, _, connection = await _http_post(host, port, bodies[index % len(bodies)])
            connection[1].close()
            assert status == 200
            return loop.time() - started

        latencies = await asyncio.gather(*[one(index) for index in range(burst_size)])

        # Trickle until the controller walks c back up to the baseline.
        trickled = 0
        deadline = loop.time() + 30.0
        while service.slo.is_degraded and loop.time() < deadline:
            status, _, _, connection = await _http_post(
                host, port, bodies[trickled % len(bodies)]
            )
            connection[1].close()
            assert status == 200
            trickled += 1
            await asyncio.sleep(0.005)

        snapshot = service.slo.snapshot()
        # Degrades can keep landing during the trickle phase, so the minimum
        # must come from the final journal, not a sample taken after the burst.
        min_reached = min(
            (entry["to"] for entry in snapshot["transitions"]), default=baseline
        )
        return {
            "burst_size": burst_size,
            "latency_budget_seconds": round(budget, 4),
            "p99_burst_seconds": round(_percentile(list(latencies), 0.99), 4),
            "baseline_confidence_threshold": baseline,
            "min_confidence_threshold_reached": min_reached,
            "degrade_transitions": snapshot["degrade_steps"],
            "recover_transitions": snapshot["recover_steps"],
            "degraded_batches": service.stats.degraded_batches,
            "trickle_requests": trickled,
            "recovered": not service.slo.is_degraded,
            "transitions": snapshot["transitions"],
        }
    finally:
        await frontend.shutdown(drain_timeout=DRAIN_BUDGET)


async def _sigterm_drain(frontend: AnnotationFrontend, host, port, bodies):
    frontend.install_signal_handlers()

    async def in_flight():
        try:
            return await _http_post(host, port, bodies[0])
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            return None

    request = asyncio.ensure_future(in_flight())
    await asyncio.sleep(0.01)
    os.kill(os.getpid(), signal.SIGTERM)
    await frontend.wait_drained(timeout=DRAIN_BUDGET + 5.0)
    request.cancel()
    await asyncio.gather(request, return_exceptions=True)
    # Give the (now finished) drain task a loop iteration to finalize.
    await asyncio.sleep(0.05)
    leaked = [
        task.get_name()
        for task in asyncio.all_tasks()
        if task is not asyncio.current_task() and not task.done()
    ]
    return {
        "drain_seconds": round(frontend.last_drain_seconds, 4),
        "drain_budget_seconds": DRAIN_BUDGET,
        "leaked_tasks": leaked,
    }
