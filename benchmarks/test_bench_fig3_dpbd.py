"""E3 (Fig. 3): the data-programming-by-demonstration walk-through.

Reproduces the paper's running example end to end: the user corrects the
"Income" column from ``revenue`` to ``salary`` (①), labeling functions are
inferred from the column and its table context (②), the source corpus is
mined for weakly labeled training data (③/④), and the customer's subsequent
predictions for the column flip to ``salary``.

Reported rows: the inferred labeling functions, the number and purity of the
generated weak labels, and the before/after prediction.
"""

from __future__ import annotations

from repro import Table
from repro.dpbd import generate_weak_labels, infer_labeling_functions
from repro.evaluation import format_table


def _fig3_table() -> Table:
    return Table.from_columns_dict(
        {
            "Name": ["Han Phi", "Thomas Do", "Alexis Nan"],
            "Income": ["$ 50K", "$ 60K", "$ 70K"],
            "Company": ["nytco", "Adyen", "Sigma"],
            "Cities": ["New York", "Amsterdam", "San Francisco"],
        },
        name="fig3_example",
    )


def test_fig3_dpbd_walkthrough(benchmark, sigmatyper, train_corpus, record_result):
    table = _fig3_table()
    customer_id = "e3-fig3-customer"
    if customer_id not in sigmatyper.customer_ids:
        sigmatyper.register_customer(customer_id)

    before = sigmatyper.annotate(table, customer_id=customer_id).prediction_for("Income")

    # ② Infer labeling functions from the demonstration (benchmarked: this is
    # the interactive-latency path the user waits on).
    functions = benchmark(
        infer_labeling_functions,
        table["Income"],
        "salary",
        table,
        ["name", "company", "city"],
    )

    # ③/④ Mine the source corpus for weakly labeled training data.  Purity can
    # only be judged on weak labels whose source column carries ground truth
    # (a small fraction of corpus columns is deliberately unlabeled).
    weak_labels = generate_weak_labels(train_corpus, functions)
    verifiable = [label for label in weak_labels if label.column.semantic_type is not None]
    salary_truth = sum(1 for label in verifiable if label.column.semantic_type == "salary")

    # The full feedback loop through the system facade.
    update = sigmatyper.give_feedback(customer_id, table, "Income", "salary", previous_type="revenue")
    after = sigmatyper.annotate(table, customer_id=customer_id).prediction_for("Income")

    lf_rows = [
        {"labeling_function": type(function).__name__, "name": function.name,
         "target": function.target_type, "fires_on_demo": round(function.apply(table["Income"]), 2)}
        for function in functions
    ]
    summary_rows = [
        {"quantity": "prediction before feedback", "value": f"{before.predicted_type} ({before.confidence:.2f})"},
        {"quantity": "labeling functions inferred", "value": len(functions)},
        {"quantity": "weak labels extracted from corpus", "value": len(weak_labels)},
        {"quantity": "weak labels with verifiable ground truth", "value": len(verifiable)},
        {"quantity": "verifiable weak labels that are truly salary", "value": salary_truth},
        {"quantity": "training examples in update", "value": update.num_training_examples},
        {"quantity": "prediction after feedback", "value": f"{after.predicted_type} ({after.confidence:.2f})"},
    ]
    record_result(
        "E3_fig3_dpbd",
        format_table(lf_rows, title="E3 / Fig. 3 — inferred labeling functions")
        + "\n\n"
        + format_table(summary_rows, title="E3 / Fig. 3 — DPBD loop summary"),
    )

    # Shape checks: the four LF families of Fig. 3 are produced and the final
    # prediction is the corrected type.
    kinds = {type(function).__name__ for function in functions}
    assert {"ValueRangeLF", "MeanRangeLF", "CoOccurrenceLF", "HeaderMatchLF"} <= kinds
    assert after.predicted_type == "salary"
    if verifiable:
        assert salary_truth / len(verifiable) >= 0.5
