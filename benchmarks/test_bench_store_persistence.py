"""E12: profile-store persistence — cold, disk-warm, memory-warm, shared-warm.

E11 showed the in-memory :class:`ProfileStore` amortising derived-state
computation across short-lived tables *within* one process.  This experiment
measures the :class:`PersistentProfileStore` disk tier built on top of it:
the same corpus is annotated (1) fully cold, (2) by a "restarted process" —
a fresh store object reopening the segment files the first store flushed —
(3) a second wave against the now memory-warm store, and (4) by a store that
has been open the whole time while a **forked sibling process** annotated and
flushed into the same (fresh) directory — the live cross-process sharing
path through the sidecar index journals.

Three properties are pinned:

* **parity** — disk-warm, memory-warm, and shared-warm predictions are
  bit-identical to the cold (storeless) path;
* **restart warmth** — the reopened store serves at least 90% of namespace
  lookups from a warm tier (memory or disk) on the same corpus;
* **live sharing** — the parent store serves at least 90% of the sibling
  process's freshly flushed keys warm *without any reopen*, the PR's
  acceptance bar for cross-process sharing.

Results land in ``BENCH_store_persistence.json`` at the repo root (columns/s
per phase, hit rates, recovery and sharing counters) so the persistence
trajectory stays comparable across PRs.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from pathlib import Path

import pytest

from repro.corpus import GitTablesConfig, GitTablesGenerator
from repro.evaluation import format_table
from repro.serving import PersistentProfileStore, available_workers

#: Machine-readable E12 results, committed at the repo root alongside the E10
#: and E11 artifacts.
BENCH_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_store_persistence.json"

#: Corpus size: enough distinct columns to make recovery/lookup costs visible,
#: small enough for a CI smoke run.
PERSISTENCE_TABLES = 120

#: The PR's acceptance bar for restart warmth.
MIN_RESTART_HIT_RATE = 0.9

#: The PR's acceptance bar for live cross-process sharing: the fraction of a
#: sibling process's flushed keys a concurrently open store serves warm.
MIN_SHARED_HIT_RATE = 0.9


@pytest.fixture(scope="module")
def persistence_corpus():
    """A dedicated corpus (distinct seed from training and E11)."""
    return GitTablesGenerator(
        GitTablesConfig(num_tables=PERSISTENCE_TABLES, seed=90210)
    ).generate_corpus()


def _fresh(tables):
    """Cold per-column caches, as every incoming request would carry."""
    return [table.copy() for table in tables]


def _comparable(predictions):
    """Prediction content without wall-clock timings (bit-exact floats)."""
    return [(p.table_name, p.step_trace, p.columns) for p in predictions]


def _artifact_stats(stats):
    """Store stats with the machine-local scratch path relativized.

    The committed artifact must not churn on the pytest tmp root, so only the
    directory's basename survives into ``BENCH_store_persistence.json``.
    """
    report = dict(stats)
    directory = report.get("directory")
    if directory:
        report["directory"] = Path(str(directory)).name
    return report


def test_store_persistence(
    benchmark, sigmatyper, persistence_corpus, record_result, tmp_path_factory
):
    tables = list(persistence_corpus)
    num_columns = sum(table.num_columns for table in tables)
    store_dir = tmp_path_factory.mktemp("profile-store")

    # Warm the model-level caches (embedder phrases, shape masks) once so all
    # phases face identical model state; per-column caches stay cold per phase
    # because each gets fresh table copies.
    sigmatyper.annotate_corpus(_fresh(tables))

    rows = []

    def phase(name, store, store_stats_after=None):
        batch = _fresh(tables)
        started = time.perf_counter()
        if store is None:
            predictions = sigmatyper.annotate_corpus(batch)
        else:
            with store.activated():
                predictions = sigmatyper.annotate_corpus(batch)
        elapsed = time.perf_counter() - started
        rows.append(
            {
                "phase": name,
                "seconds_total": round(elapsed, 3),
                "columns_per_second": round(num_columns / elapsed, 1),
                "hit_rate": round(store.hit_rate, 4) if store is not None else 0.0,
                "disk_hits": store.disk_hits if store is not None else 0,
                "shared_hits": store.shared_hits if store is not None else 0,
            }
        )
        return predictions

    # Reference: the storeless serial path.
    reference = _comparable(phase("no store (baseline)", None))

    # Phase 1 — cold: a fresh store over an empty directory, then flush (the
    # write-behind flusher's job, done synchronously for determinism).
    cold_store = PersistentProfileStore(store_dir, max_columns=16384, flush_interval=0)
    cold = phase("cold store", cold_store)
    cold_store.flush()
    flushed_entries = cold_store.disk_entries
    cold_store.close()
    assert _comparable(cold) == reference, "cold persistent store changed predictions"

    # Phase 2 — disk-warm: a "restarted process" reopens the directory; every
    # distinct column should be served from the recovered segment files.
    warm_store = PersistentProfileStore(store_dir, max_columns=16384, flush_interval=0)
    assert warm_store.recovered_entries == flushed_entries
    disk_warm = phase("disk-warm (restart)", warm_store)
    assert _comparable(disk_warm) == reference, "disk-warm store changed predictions"
    restart_hit_rate = warm_store.hit_rate
    restart_disk_hits = warm_store.disk_hits

    # Phase 3 — memory-warm: a second wave against the same store instance.
    memory_warm = phase("memory-warm", warm_store)
    assert _comparable(memory_warm) == reference, "memory-warm store changed predictions"
    final_stats = warm_store.stats()
    warm_store.close()

    # Phase 4 — shared-warm (live multi-writer): a forked sibling process
    # annotates and flushes into a *fresh* directory while this process's
    # store is already open; the parent then serves the sibling's entries
    # through the sidecar index journals — no restart, no reopen.
    multiwriter = None
    if "fork" in multiprocessing.get_all_start_methods():
        ctx = multiprocessing.get_context("fork")
        shared_dir = tmp_path_factory.mktemp("profile-store-shared")
        parent_store = PersistentProfileStore(
            shared_dir, max_columns=16384, flush_interval=0
        )
        queue = ctx.Queue()

        def sibling_main():
            try:
                with parent_store.activated():
                    predictions = sigmatyper.annotate_corpus(_fresh(tables))
                    parent_store.flush()
                queue.put(
                    ("ok", _comparable(predictions) == reference, parent_store.disk_entries)
                )
            except Exception as exc:  # noqa: BLE001 - reported to the parent
                queue.put(("error", repr(exc), 0))

        process = ctx.Process(target=sibling_main)
        process.start()
        status, sibling_parity, sibling_flushed = queue.get(timeout=600)
        process.join(timeout=60)
        assert status == "ok", status
        assert process.exitcode == 0
        assert sibling_parity, "sibling process changed predictions"
        assert sibling_flushed > 0

        shared_warm = phase("shared-warm (live sibling)", parent_store)
        assert _comparable(shared_warm) == reference, "shared-warm store changed predictions"
        shared_hit_rate = parent_store.hit_rate
        shared_hits = parent_store.shared_hits
        multiwriter = {
            "sibling_flushed_entries": sibling_flushed,
            "shared_hits": shared_hits,
            "shared_hit_rate": round(shared_hit_rate, 4),
            "store": _artifact_stats(parent_store.stats()),
        }
        parent_store.close()

    usable_cpus = available_workers()
    record_result(
        "E12_store_persistence",
        format_table(
            rows,
            title=(
                f"E12 — profile-store persistence ({len(tables)} tables, "
                f"{num_columns} columns, {usable_cpus} usable CPUs)"
            ),
        ),
    )
    BENCH_JSON_PATH.write_text(
        json.dumps(
            {
                "experiment": "E12_store_persistence",
                "usable_cpus": usable_cpus,
                "num_tables": len(tables),
                "num_columns": num_columns,
                "flushed_entries": flushed_entries,
                "restart_hit_rate": round(restart_hit_rate, 4),
                "restart_disk_hits": restart_disk_hits,
                "multiwriter": multiwriter,
                "phases": rows,
                "store": _artifact_stats(final_stats),
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )

    # A representative persistent-serving operation for pytest-benchmark: one
    # bulk call over a small slice against a disk-warm store.
    bench_store = PersistentProfileStore(store_dir, flush_interval=0)
    with bench_store.activated():
        benchmark(sigmatyper.annotate_corpus, tables[:5])
    bench_store.close()

    # Acceptance: the restarted store serves >= 90% of lookups warm.
    assert restart_disk_hits > 0, "restart never touched the disk tier"
    assert restart_hit_rate >= MIN_RESTART_HIT_RATE, (
        f"restarted store served only {restart_hit_rate:.1%} of lookups warm "
        f"(bar: {MIN_RESTART_HIT_RATE:.0%}); stats: {final_stats}"
    )

    # Acceptance: a live store serves >= 90% of a sibling process's freshly
    # flushed keys warm, without any restart.
    if multiwriter is not None:
        assert multiwriter["shared_hits"] >= MIN_SHARED_HIT_RATE * (
            multiwriter["sibling_flushed_entries"]
        ), f"live sharing below the bar: {multiwriter}"
        assert multiwriter["shared_hit_rate"] >= MIN_SHARED_HIT_RATE, multiwriter
