"""E4 (Fig. 4): the 3-step cascade — trigger rates, latency ordering, and
per-step quality.

The paper orders the pipeline steps by inference time and only invokes a step
for the columns the previous steps were not confident about.  This experiment
measures, on the held-out corpus: how many columns reach each step, how much
wall-clock each step consumes, and the precision/coverage each step achieves
on its own, plus the aggregated system.
"""

from __future__ import annotations

from repro.core.pipeline import CascadeConfig, TypeDetectionPipeline
from repro.evaluation import evaluate_annotator, format_table


def _single_step_pipeline(step, tau):
    return TypeDetectionPipeline([step], config=CascadeConfig(tau=tau))


def test_fig4_pipeline_cascade(benchmark, sigmatyper, test_corpus, record_result):
    pipeline = sigmatyper.global_model.pipeline
    cascade_result = evaluate_annotator(sigmatyper, test_corpus, name="full cascade")

    total_columns = test_corpus.num_columns
    step_rows = []
    for step in pipeline.steps:
        columns_seen = cascade_result.step_trace.get(step.name, 0)
        seconds = cascade_result.step_seconds.get(step.name, 0.0)
        solo = evaluate_annotator(
            _single_step_pipeline(step, tau=pipeline.config.tau),
            test_corpus,
            name=step.name,
        )
        step_rows.append(
            {
                "step": step.name,
                "cost_rank": step.cost_rank,
                "columns_reached": columns_seen,
                "fraction_of_columns": round(columns_seen / total_columns, 3),
                "seconds_in_cascade": round(seconds, 3),
                "ms_per_column": round(1000 * seconds / columns_seen, 2) if columns_seen else 0.0,
                "solo_precision": solo.metrics.precision,
                "solo_coverage": solo.metrics.coverage,
                "solo_macro_f1": solo.metrics.macro_f1,
            }
        )
    step_rows.append(
        {
            "step": "full cascade (aggregated)",
            "cost_rank": "-",
            "columns_reached": total_columns,
            "fraction_of_columns": 1.0,
            "seconds_in_cascade": round(sum(cascade_result.step_seconds.values()), 3),
            "ms_per_column": round(
                1000 * sum(cascade_result.step_seconds.values()) / total_columns, 2
            ),
            "solo_precision": cascade_result.metrics.precision,
            "solo_coverage": cascade_result.metrics.coverage,
            "solo_macro_f1": cascade_result.metrics.macro_f1,
        }
    )

    benchmark(sigmatyper.annotate, test_corpus[0])

    record_result(
        "E4_fig4_pipeline",
        format_table(step_rows, title="E4 / Fig. 4 — cascade trigger rates, latency, per-step quality"),
    )

    # Shape checks: the cascade funnels columns (later steps see fewer).
    # Note: the paper's cost ordering puts the table-embedding model (TaBERT)
    # last because it is by far the slowest; in this reproduction that step is
    # a small numpy MLP, so the per-column millisecond ordering differs — the
    # funnel structure and the aggregation quality are the reproducible shape.
    header, lookup, embedding = step_rows[0], step_rows[1], step_rows[2]
    assert header["columns_reached"] == total_columns
    assert lookup["columns_reached"] <= header["columns_reached"]
    assert embedding["columns_reached"] <= lookup["columns_reached"]
    # The aggregated cascade should not be worse than the best single step on macro-F1.
    best_solo = max(row["solo_macro_f1"] for row in step_rows[:3])
    assert step_rows[-1]["solo_macro_f1"] >= best_solo - 0.05
