"""E1 (Fig. 1): the three data-shift flavours and their effect on the system.

The paper's Fig. 1 illustrates covariate shift, label shift, and
out-of-distribution data as the reasons a statically-trained model fails in a
new customer context.  This experiment quantifies that: the pretrained global
model is evaluated on an in-distribution control set and on one target set per
shift flavour, and (for label shift) a feedback-adapted customer is evaluated
on the same data to show the gap DPBD closes.

Reported series: accuracy / precision / coverage per scenario.
"""

from __future__ import annotations

import pytest

from repro.corpus import build_scenario
from repro.evaluation import evaluate_annotator, format_table


@pytest.fixture(scope="module")
def scenarios():
    return {
        "covariate_shift": build_scenario("covariate", seed=301, num_tables=15).corpus,
        "label_shift": build_scenario("label", seed=302, num_tables=15).corpus,
        "out_of_distribution": build_scenario("ood", seed=303, num_tables=12).corpus,
    }


def _adapted_customer(sigmatyper, label_corpus, customer_id="e1-adapted", rounds=3):
    """Register a customer and feed it corrections for the shifted columns."""
    if customer_id not in sigmatyper.customer_ids:
        sigmatyper.register_customer(customer_id)
        feedback_tables = list(label_corpus)[: max(3, len(label_corpus) // 3)]
        for table in feedback_tables:
            for column in table.columns:
                if "label_shift" in column.metadata:
                    for _ in range(rounds):
                        sigmatyper.give_feedback(
                            customer_id, table, column.name, column.semantic_type
                        )
    return customer_id


def test_fig1_data_shift(benchmark, sigmatyper, test_corpus, scenarios, record_result):
    rows = []

    control = evaluate_annotator(sigmatyper, test_corpus, name="in_distribution")
    rows.append({"scenario": "in_distribution (control)", "system": "global model",
                 **{k: v for k, v in control.metrics.summary().items()
                    if k in ("columns", "coverage", "precision", "accuracy", "macro_f1")}})

    for name, corpus in scenarios.items():
        result = evaluate_annotator(sigmatyper, corpus, name=name)
        rows.append({"scenario": name, "system": "global model",
                     **{k: v for k, v in result.metrics.summary().items()
                        if k in ("columns", "coverage", "precision", "accuracy", "macro_f1")}})

    # Label shift with an adapted customer: feedback should recover accuracy.
    customer_id = _adapted_customer(sigmatyper, scenarios["label_shift"])
    adapted = evaluate_annotator(
        lambda table: sigmatyper.annotate(table, customer_id=customer_id),
        scenarios["label_shift"],
        name="label_shift_adapted",
    )
    rows.append({"scenario": "label_shift", "system": "global + adapted local",
                 **{k: v for k, v in adapted.metrics.summary().items()
                    if k in ("columns", "coverage", "precision", "accuracy", "macro_f1")}})

    table = scenarios["covariate_shift"][0]
    benchmark(sigmatyper.annotate, table)

    record_result(
        "E1_fig1_data_shift",
        format_table(rows, title="E1 / Fig. 1 — model accuracy under data shift"),
    )

    # Shape checks (the qualitative claims of Fig. 1).  Label shift is judged
    # on macro-F1: the shifted types are a minority of columns, so per-column
    # accuracy barely moves, but the frozen model gets *every* shifted type
    # wrong (low macro-F1) and adaptation is what recovers them.
    by_scenario = {(row["scenario"], row["system"]): row for row in rows}
    control_accuracy = by_scenario[("in_distribution (control)", "global model")]["accuracy"]
    label_macro_f1 = by_scenario[("label_shift", "global model")]["macro_f1"]
    adapted_macro_f1 = by_scenario[("label_shift", "global + adapted local")]["macro_f1"]
    assert by_scenario[("label_shift", "global model")]["accuracy"] < control_accuracy
    assert by_scenario[("covariate_shift", "global model")]["accuracy"] < control_accuracy
    assert adapted_macro_f1 > label_macro_f1, "feedback adaptation should recover the shifted types"
