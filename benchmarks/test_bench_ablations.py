"""E11: ablations of the design choices DESIGN.md calls out.

Removes one ingredient at a time from the hybrid system — individual pipeline
steps, the τ threshold, the soft majority vote — and reports the impact on
precision, coverage, and macro-F1 on the held-out corpus.  The expected shape
is that every ingredient pays its way: dropping a step or the aggregation
loses macro-F1, and dropping τ loses precision.
"""

from __future__ import annotations

from repro.core.aggregation import Aggregator
from repro.core.pipeline import CascadeConfig, TypeDetectionPipeline
from repro.evaluation import evaluate_annotator, format_table


def _variant(sigmatyper, step_names=None, tau=None, aggregation="soft_majority"):
    base = sigmatyper.global_model.pipeline
    steps = [step for step in base.steps if step_names is None or step.name in step_names]
    config = CascadeConfig(
        confidence_threshold=base.config.confidence_threshold,
        tau=base.config.tau if tau is None else tau,
        top_k=base.config.top_k,
        aggregation_method=aggregation,
    )
    return TypeDetectionPipeline(steps, config=config, aggregator=Aggregator(method=aggregation))


def test_ablations(benchmark, sigmatyper, test_corpus, record_result):
    variants = {
        "full system (soft majority, tau)": _variant(sigmatyper),
        "- header matching step": _variant(sigmatyper, step_names=("value_lookup", "table_embedding")),
        "- value lookup step": _variant(sigmatyper, step_names=("header_matching", "table_embedding")),
        "- learned table-embedding step": _variant(sigmatyper, step_names=("header_matching", "value_lookup")),
        "header matching only": _variant(sigmatyper, step_names=("header_matching",)),
        "learned model only": _variant(sigmatyper, step_names=("table_embedding",)),
        "hard majority vote": _variant(sigmatyper, aggregation="hard_majority"),
        "max-confidence merge": _variant(sigmatyper, aggregation="max"),
        "no tau threshold (tau = 0)": _variant(sigmatyper, tau=0.0),
    }

    rows = []
    for name, pipeline in variants.items():
        result = evaluate_annotator(pipeline, test_corpus, name=name)
        rows.append(
            {
                "variant": name,
                "coverage": result.metrics.coverage,
                "precision": result.metrics.precision,
                "accuracy": result.metrics.accuracy,
                "macro_f1": result.metrics.macro_f1,
            }
        )

    benchmark(variants["full system (soft majority, tau)"].annotate, test_corpus[0])

    record_result(
        "E11_ablations",
        format_table(rows, title="E11 — ablating pipeline steps, aggregation, and tau"),
    )

    by_variant = {row["variant"]: row for row in rows}
    full = by_variant["full system (soft majority, tau)"]
    # Shape: the full hybrid beats (or at worst matches) every single-step variant on macro-F1,
    # and removing tau cannot increase precision.
    assert full["macro_f1"] >= by_variant["header matching only"]["macro_f1"] - 0.02
    assert full["macro_f1"] >= by_variant["learned model only"]["macro_f1"] - 0.02
    assert by_variant["no tau threshold (tau = 0)"]["precision"] <= full["precision"] + 1e-9
    assert by_variant["no tau threshold (tau = 0)"]["coverage"] >= full["coverage"] - 1e-9
