"""E2 (Fig. 2): global + local model architecture.

Reproduces the architecture diagram as a measurable experiment: three
customers from different domains give feedback; the experiment reports the
evolution of the per-type weight vectors W_g / W_l per customer, and verifies
that one customer's adaptation never changes another customer's predictions
(tenant isolation, "the newly generated training data is only used to adapt
the local model").
"""

from __future__ import annotations

import pytest

from repro.corpus import GitTablesConfig, GitTablesGenerator
from repro.evaluation import format_table


@pytest.fixture(scope="module")
def customer_domains():
    return {
        "acme-hr": GitTablesGenerator(
            GitTablesConfig(num_tables=6, themes=("human_resources",), seed=401)
        ).generate_corpus(),
        "mercury-sales": GitTablesGenerator(
            GitTablesConfig(num_tables=6, themes=("sales_orders",), seed=402)
        ).generate_corpus(),
        "stvincent-clinic": GitTablesGenerator(
            GitTablesConfig(num_tables=6, themes=("medical_records",), seed=403)
        ).generate_corpus(),
    }


def test_fig2_global_local_weights(benchmark, sigmatyper, customer_domains, record_result):
    rows = []
    reference_table = next(iter(customer_domains.values()))[0]
    baseline_mapping = sigmatyper.annotate(reference_table).as_mapping()

    for customer_id, corpus in customer_domains.items():
        if customer_id not in sigmatyper.customer_ids:
            sigmatyper.register_customer(customer_id)
        # Each customer corrects/confirms a handful of columns in its domain.
        feedback_rounds = 0
        for table in list(corpus)[:3]:
            for column in table.columns[:2]:
                if column.semantic_type is None:
                    continue
                sigmatyper.give_feedback(customer_id, table, column.name, column.semantic_type)
                feedback_rounds += 1
        context = sigmatyper.customer(customer_id)
        global_weights, local_weights = context.local_model.weights.weight_vectors()
        for type_name in sorted(local_weights):
            rows.append(
                {
                    "customer": customer_id,
                    "type": type_name,
                    "observations": context.local_model.weights.observation_count(type_name),
                    "W_local": round(local_weights[type_name], 3),
                    "W_global": round(global_weights[type_name], 3),
                    "labeling_functions": len(context.local_model.labeling_functions.for_type(type_name)),
                }
            )

    # Tenant isolation: a brand-new customer still sees the global predictions.
    sigmatyper.register_customer("e2-fresh")
    fresh_mapping = sigmatyper.annotate(reference_table, customer_id="e2-fresh").as_mapping()
    assert fresh_mapping == baseline_mapping

    benchmark(sigmatyper.annotate, reference_table, customer_id=next(iter(customer_domains)))

    record_result(
        "E2_fig2_global_local",
        format_table(rows, title="E2 / Fig. 2 — per-customer weight vectors after feedback"),
    )

    # Weight growth: every observed type has 0 < W_local <= max cap and W_g = 1 - W_l.
    assert rows, "feedback must have produced local weights"
    for row in rows:
        assert 0.0 < row["W_local"] <= 0.9
        assert row["W_global"] == pytest.approx(1.0 - row["W_local"], abs=1e-3)
