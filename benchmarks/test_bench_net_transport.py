"""E16: multi-node block transport — loopback TCP vs shm vs serial, plus chaos.

PR 8 pushes the PR 5/7 column blocks across a socket: the ``tcp`` transport
ships the exact ``ColumnBlockCodec`` / ``PredictionBlockCodec`` byte layouts
in crc-framed messages to a :class:`~repro.serving.net.BlockWorkerServer`,
which decodes them into anonymous mmap and runs the block-native kernels over
the received buffers.  This experiment pins the properties that make that
safe to deploy:

* **parity** — annotating through ``multiprocess:4+tcp://127.0.0.1:<port>``
  returns predictions bit-identical to the serial path and to the ``+shm``
  local baseline;
* **chaos parity** — the same run through a fault-injection proxy that
  corrupts, tears, and kills frames mid-shard *still* returns bit-identical
  predictions: every wounded shard is re-run locally and counted as a
  ``local_fallback`` with a reason;
* **lifecycle** — no shared-memory segment and no server/proxy socket
  survives the run; any survivor is printed as ``LEAKED SEGMENT <name>`` /
  ``LEAKED SOCKET <where>`` (the CI smoke job greps the log for exactly
  those markers).

Wall-clock is reported, never gated: on the 1-CPU build container loopback
TCP vs shm is scheduling noise (canonical caveat in ``docs/SERVING.md``).
"""

from __future__ import annotations

import json
import os
import socket
import sys
import time
from pathlib import Path

import pytest

from repro.corpus import GitTablesConfig, GitTablesGenerator
from repro.evaluation import format_table
from repro.serving import (
    MultiprocessBackend,
    NetConfig,
    NetTransport,
    ShmTransport,
    available_workers,
    reset_transport_stats,
    transport_stats,
)
from repro.serving.net import MSG_SHARD, read_frame, write_frame
from repro.serving.net import BlockWorkerServer
from repro.serving.transport import RESULT_SEGMENT_PREFIX, SHARD_SEGMENT_PREFIX

# The fault proxy is a test asset, deliberately shared with the chaos suite.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tests"))
from faultnet import C2S, S2C, FaultProxy, Rule  # noqa: E402

#: Machine-readable E16 results, committed at the repo root alongside the
#: other benchmark artifacts.
BENCH_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_net_transport.json"

#: Corpus size: distinct seed from every other experiment; small enough for a
#: CI smoke run, large enough that each of the 4 shards carries real payload.
NET_TABLES = 96
WORKERS = 4

#: Deadlines tuned for a loopback chaos run: dropped frames cost one
#: io_timeout, dead peers one connect_timeout — seconds, not minutes.
CHAOS_NET = dict(connect_timeout=0.5, io_timeout=2.0, connect_retries=1, backoff_base=0.01)


def _live_segments() -> list[str]:
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):  # pragma: no cover - non-Linux fallback
        return []
    return sorted(
        name
        for name in os.listdir(shm_dir)
        if name.startswith((SHARD_SEGMENT_PREFIX, RESULT_SEGMENT_PREFIX))
    )


@pytest.fixture(scope="module")
def net_corpus():
    """A dedicated bulk-annotation corpus (distinct from the training seeds)."""
    return GitTablesGenerator(
        GitTablesConfig(num_tables=NET_TABLES, seed=31337)
    ).generate_corpus()


def _fresh(tables):
    """Cold per-column caches, as every incoming request would carry."""
    return [table.copy() for table in tables]


def _comparable(predictions):
    """Prediction content without wall-clock timings (bit-exact floats)."""
    return [(p.table_name, p.step_trace, p.columns) for p in predictions]


def test_net_transport(benchmark, sigmatyper, net_corpus, record_result):
    tables = list(net_corpus)
    num_columns = sum(table.num_columns for table in tables)

    # Warm the model-level caches once so every configuration faces the same
    # model state; per-column caches stay cold per configuration.
    sigmatyper.annotate_corpus(_fresh(tables))

    started = time.perf_counter()
    reference = _comparable(sigmatyper.annotate_corpus(_fresh(tables)))
    serial_seconds = time.perf_counter() - started

    rows = [
        {
            "configuration": "(serial reference)",
            "seconds_total": round(serial_seconds, 3),
            "columns_per_second": round(num_columns / serial_seconds, 1),
            "remote_shards": 0,
            "local_fallbacks": 0,
            "net_bytes_out": 0,
            "net_bytes_in": 0,
        }
    ]

    def run_leg(label, transport, extra=()):
        reset_transport_stats()
        backend = MultiprocessBackend(WORKERS, transport=transport)
        batch = _fresh(tables)
        leg_started = time.perf_counter()
        predictions = sigmatyper.annotate_corpus(batch, backend=backend)
        elapsed = time.perf_counter() - leg_started
        assert _comparable(predictions) == reference, (
            f"{label} diverged from the serial path"
        )
        stats = transport.stats
        rows.append(
            {
                "configuration": label,
                "seconds_total": round(elapsed, 3),
                "columns_per_second": round(num_columns / elapsed, 1),
                "remote_shards": getattr(stats, "remote_shards", 0),
                "local_fallbacks": getattr(stats, "local_fallbacks", 0),
                "net_bytes_out": getattr(stats, "net_bytes_out", 0),
                "net_bytes_in": getattr(stats, "net_bytes_in", 0),
            }
        )
        return stats

    # ---- leg 1: the PR 5 local shm baseline ---------------------------------
    run_leg(f"multiprocess:{WORKERS}+shm", ShmTransport())

    # ---- leg 2: loopback TCP to a block worker server -----------------------
    with BlockWorkerServer.for_typer(sigmatyper) as server:
        tcp_stats = run_leg(
            f"multiprocess:{WORKERS}+tcp (loopback)",
            NetTransport([server.address], NetConfig(**CHAOS_NET)),
        )
        assert tcp_stats.remote_shards == WORKERS
        assert tcp_stats.local_fallbacks == 0
        assert tcp_stats.net_bytes_out > 0 and tcp_stats.net_bytes_in > 0
        assert server.stats["shards_served"] == WORKERS
        assert server.wait_idle()
        server_stats = dict(server.stats)

        # ---- leg 3: the same run through a hostile wire ---------------------
        proxy = FaultProxy(
            server.address,
            rules=[
                # Connection 0: the shard frame's magic is flipped — the
                # server rejects the frame and the client sees a dead peer.
                Rule(C2S, 0, "corrupt", corrupt_offset=0, conn_index=0),
                # Connection 1: the result frame is torn mid-payload.
                Rule(S2C, 0, "truncate", keep_bytes=40, conn_index=1),
                # Connection 2: the peer dies the moment the shard arrives.
                Rule(C2S, 0, "kill", conn_index=2),
            ],
        )
        with proxy:
            chaos_stats = run_leg(
                f"multiprocess:{WORKERS}+tcp (chaos proxy)",
                NetTransport(
                    [(proxy.address[0], proxy.address[1])], NetConfig(**CHAOS_NET)
                ),
            )
        assert len(proxy.faults) == 3, proxy.faults
        assert chaos_stats.local_fallbacks == 3
        assert chaos_stats.remote_shards == WORKERS - 3
        assert chaos_stats.last_fallback_reason
        chaos_global = transport_stats()["tcp"]
        assert chaos_global["local_fallbacks"] == 3
        assert server.wait_idle()
        proxy_stats = dict(proxy.stats)

        # Lifecycle: nothing may outlive the legs.  Leaks are printed with
        # stable markers for the CI log grep.
        leaked_segments = _live_segments()
        for name in leaked_segments:
            print(f"LEAKED SEGMENT {name}")
        assert not leaked_segments, f"segments leaked: {leaked_segments}"
        leaked_sockets = []
        if server.open_connections():
            leaked_sockets.append(f"server:{server.open_connections()}")
        if proxy._socks:
            leaked_sockets.append(f"proxy:{len(proxy._socks)}")
        for where in leaked_sockets:
            print(f"LEAKED SOCKET {where}")
        assert not leaked_sockets, f"sockets leaked: {leaked_sockets}"

    usable_cpus = available_workers()
    record_result(
        "E16_net_transport",
        format_table(
            rows,
            title=(
                f"E16 — net transport over {len(tables)} tables / {num_columns} "
                f"columns, {WORKERS} workers, {usable_cpus} usable CPUs "
                f"(chaos: 3 faults, 3 local fallbacks, parity held)"
            ),
        ),
    )
    BENCH_JSON_PATH.write_text(
        json.dumps(
            {
                "experiment": "E16_net_transport",
                "usable_cpus": usable_cpus,
                "num_tables": len(tables),
                "num_columns": num_columns,
                "workers": WORKERS,
                "configurations": rows,
                "chaos_faults": [list(fault) for fault in proxy.faults],
                "chaos_fallback_reason": chaos_stats.last_fallback_reason,
                "server_stats": server_stats,
                "proxy_stats": proxy_stats,
                "leaked_segments": leaked_segments,
                "leaked_sockets": leaked_sockets,
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )

    # Representative operation for pytest-benchmark: framing one shard's
    # block bytes onto a socketpair while a drain thread reads and
    # crc-checks the frames — the per-shard wire cost the tcp transport
    # adds on top of the shm path's codec work.  (The drain thread matters:
    # a shard blob is larger than the kernel's socket buffer, so a
    # single-threaded write-then-read would deadlock in sendall.)
    import threading

    from repro.serving import ColumnBlockCodec

    shard = tables[: max(1, len(tables) // WORKERS)]
    blob = bytes(ColumnBlockCodec.encode_tables(shard))
    left, right = socket.socketpair()

    def drain():
        while True:
            frame = read_frame(right, len(blob) + 1024, eof_ok=True)
            if frame is None:
                return
            assert frame[0] == MSG_SHARD and len(frame[1]) == len(blob)

    drain_thread = threading.Thread(target=drain, daemon=True)
    drain_thread.start()
    try:
        benchmark(write_frame, left, MSG_SHARD, blob)
    finally:
        left.close()
        drain_thread.join(timeout=5)
        right.close()
    assert not drain_thread.is_alive()
