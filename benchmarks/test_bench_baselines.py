"""E9 (Sections 1–2): SigmaTyper vs. the existing approaches it is motivated by.

Compares, on the same held-out database-like corpus:

* the commercial-style regex + dictionary matcher (high precision, low coverage),
* header-only matching,
* a Sherlock-like single-column learned model,
* a Sato-like learned model with table context, and
* the full hybrid SigmaTyper cascade.

Expected shape: the hybrid system has the best macro-F1; the regex baseline
has high precision but much lower coverage; learned baselines sit in between.
"""

from __future__ import annotations

import pytest

from repro.baselines import (
    HeaderOnlyBaseline,
    RegexDictionaryBaseline,
    SatoLikeBaseline,
    SherlockLikeBaseline,
)
from repro.evaluation import evaluate_annotator, format_table
from repro.nn import MLPConfig

_EPOCHS = 30


@pytest.fixture(scope="module")
def fitted_baselines(train_corpus, sigmatyper):
    baselines = {
        "regex + dictionary (commercial-style)": RegexDictionaryBaseline(),
        "header matching only": HeaderOnlyBaseline(sigmatyper.global_model.ontology),
        "Sherlock-like (values only)": SherlockLikeBaseline(
            mlp_config=MLPConfig(max_epochs=_EPOCHS, hidden_sizes=(128, 64), seed=11)
        ),
        "Sato-like (values + context)": SatoLikeBaseline(
            mlp_config=MLPConfig(max_epochs=_EPOCHS, hidden_sizes=(128, 64), seed=12)
        ),
    }
    for baseline in baselines.values():
        baseline.fit(train_corpus)
    return baselines


def test_system_comparison(benchmark, sigmatyper, fitted_baselines, test_corpus, record_result):
    rows = []
    for name, baseline in fitted_baselines.items():
        result = evaluate_annotator(
            lambda table, baseline=baseline: baseline.annotate(table, tau=sigmatyper.tau),
            test_corpus,
            name=name,
        )
        rows.append({"system": name, **_headline(result)})

    sigmatyper_result = evaluate_annotator(sigmatyper, test_corpus, name="SigmaTyper (hybrid cascade)")
    rows.append({"system": "SigmaTyper (hybrid cascade)", **_headline(sigmatyper_result)})

    benchmark(sigmatyper.annotate, test_corpus[0])

    record_result(
        "E9_baselines",
        format_table(rows, title="E9 — system comparison on held-out database-like tables"),
    )

    by_system = {row["system"]: row for row in rows}
    sigma = by_system["SigmaTyper (hybrid cascade)"]
    regex = by_system["regex + dictionary (commercial-style)"]
    # Shape: the hybrid system wins on macro-F1 against every baseline, and the
    # commercial-style baseline trades coverage for precision.
    for name, row in by_system.items():
        if name == "SigmaTyper (hybrid cascade)":
            continue
        assert sigma["macro_f1"] >= row["macro_f1"] - 0.02, f"hybrid should not lose to {name}"
    assert regex["coverage"] < sigma["coverage"]
    assert regex["precision"] >= 0.6


def _headline(result):
    summary = result.summary()
    return {
        "coverage": summary["coverage"],
        "precision": summary["precision"],
        "accuracy": summary["accuracy"],
        "macro_f1": summary["macro_f1"],
        "weighted_f1": summary["weighted_f1"],
        "columns_per_second": summary["columns_per_second"],
    }
