"""E7 (Sections 2.3 / 4.3): out-of-distribution detection quality.

"Upon encountering tables and labels that are far from the training data, the
system should avoid inferring labels for it."  This experiment mixes
in-distribution columns with columns of types the ontology does not contain
(gene sequences, chess openings, licence plates, ...) and measures: the
abstention rate on each population, the AUROC of the confidence-based OOD
scores (max-softmax, entropy, energy), and the benefit of the background
``unknown`` class.
"""

from __future__ import annotations

import pytest

from repro.corpus import build_ood_corpus
from repro.embedding_model import OODDetector, auroc
from repro.evaluation import format_table


@pytest.fixture(scope="module")
def ood_corpus():
    return build_ood_corpus(num_tables=15, ood_columns_per_table=2, seed=601)


def _column_populations(ood_corpus, test_corpus):
    ood_columns = [
        (entry.column, entry.table)
        for entry in ood_corpus.columns()
        if str(entry.label).startswith("ood:")
    ]
    in_columns = [
        (entry.column, entry.table) for entry in test_corpus.labeled_columns()
    ][: len(ood_columns) * 2]
    return in_columns, ood_columns


def test_ood_detection(benchmark, sigmatyper, test_corpus, ood_corpus, record_result):
    classifier = sigmatyper.global_model.classifier
    assert classifier is not None
    in_columns, ood_columns = _column_populations(ood_corpus, test_corpus)

    # System-level behaviour: abstention rates through the full pipeline.
    def abstention_rate(corpus, only_ood):
        abstained = total = 0
        for table in corpus:
            prediction = sigmatyper.annotate(table)
            for column, column_prediction in zip(table.columns, prediction.columns):
                is_ood = str(column.semantic_type or "").startswith("ood:")
                if column.semantic_type is None or is_ood != only_ood:
                    continue
                total += 1
                abstained += bool(column_prediction.abstained)
        return abstained / total if total else 0.0

    system_rows = [
        {"population": "in-distribution columns", "pipeline_abstention_rate": round(abstention_rate(test_corpus, only_ood=False), 3)},
        {"population": "out-of-distribution columns", "pipeline_abstention_rate": round(abstention_rate(ood_corpus, only_ood=True), 3)},
    ]

    # Score-level quality: AUROC per OOD scoring method.
    score_rows = []
    for method in OODDetector.METHODS:
        detector = OODDetector(classifier, method=method, accept_fraction=0.95)
        in_scores = [detector.score(column, table) for column, table in in_columns]
        ood_scores = [detector.score(column, table) for column, table in ood_columns]
        detector.calibrate(in_columns)
        flagged_ood = sum(detector.is_out_of_distribution(c, t) for c, t in ood_columns) / len(ood_columns)
        flagged_in = sum(detector.is_out_of_distribution(c, t) for c, t in in_columns) / len(in_columns)
        score_rows.append(
            {
                "ood_score": method,
                "auroc": round(auroc(in_scores, ood_scores), 3),
                "ood_flag_rate": round(flagged_ood, 3),
                "in_dist_false_alarm_rate": round(flagged_in, 3),
            }
        )

    # Unknown-class behaviour of the raw classifier.
    unknown_hits = sum(
        1 for column, table in ood_columns if classifier.predict_type(column, table) == "unknown"
    )
    score_rows.append(
        {
            "ood_score": "background unknown class (top-1)",
            "auroc": "-",
            "ood_flag_rate": round(unknown_hits / len(ood_columns), 3),
            "in_dist_false_alarm_rate": round(
                sum(1 for c, t in in_columns if classifier.predict_type(c, t) == "unknown") / len(in_columns), 3
            ),
        }
    )

    detector = OODDetector(classifier, method="max_softmax")
    benchmark(detector.score, ood_columns[0][0], ood_columns[0][1])

    record_result(
        "E7_ood_detection",
        format_table(system_rows, title="E7 — pipeline abstention by population")
        + "\n\n"
        + format_table(score_rows, title="E7 — OOD scoring methods"),
    )

    # Shape: the system abstains far more often on OOD columns, and at least
    # one scoring method separates the populations better than chance.
    assert system_rows[1]["pipeline_abstention_rate"] > system_rows[0]["pipeline_abstention_rate"]
    aurocs = [row["auroc"] for row in score_rows if isinstance(row["auroc"], float)]
    assert max(aurocs) > 0.6
