"""E10 (Section 4.3): cascade vs. exhaustive execution.

"To minimize overhead, each step in the pipeline is executed ... only if a
preset confidence threshold c is not met by the prior step.  The steps are
executed in order of inference time."  This experiment measures the end-to-end
latency and accuracy of the confidence-gated cascade against running every
step on every column, and sweeps the confidence threshold c.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.pipeline import CascadeConfig, TypeDetectionPipeline
from repro.evaluation import evaluate_annotator, format_table

#: Machine-readable E10 results, committed at the repo root so the perf
#: trajectory of the cascade stays comparable across PRs.
BENCH_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_cascade_latency.json"


def _pipeline_variant(sigmatyper, confidence_threshold, always_run_all):
    base = sigmatyper.global_model.pipeline
    config = CascadeConfig(
        confidence_threshold=confidence_threshold,
        tau=base.config.tau,
        top_k=base.config.top_k,
        always_run_all_steps=always_run_all,
        aggregation_method=base.config.aggregation_method,
    )
    return TypeDetectionPipeline(base.steps, config=config, aggregator=base.aggregator)


def test_cascade_vs_exhaustive(benchmark, sigmatyper, test_corpus, record_result):
    variants = [
        ("exhaustive (all steps, all columns)", _pipeline_variant(sigmatyper, 0.85, True)),
        ("cascade, c = 0.70", _pipeline_variant(sigmatyper, 0.70, False)),
        ("cascade, c = 0.85 (default)", _pipeline_variant(sigmatyper, 0.85, False)),
        ("cascade, c = 0.95", _pipeline_variant(sigmatyper, 0.95, False)),
    ]

    rows = []
    for name, pipeline in variants:
        result = evaluate_annotator(pipeline, test_corpus, name=name)
        learned_step_columns = result.step_trace.get("table_embedding", 0)
        rows.append(
            {
                "configuration": name,
                "seconds_total": round(result.wall_seconds, 3),
                "columns_per_second": round(result.metrics.total / result.wall_seconds, 1),
                "columns_reaching_learned_step": learned_step_columns,
                "accuracy": result.metrics.accuracy,
                "macro_f1": result.metrics.macro_f1,
            }
        )

    default_cascade = _pipeline_variant(sigmatyper, 0.85, False)
    benchmark(default_cascade.annotate, test_corpus[0])

    record_result(
        "E10_cascade_latency",
        format_table(rows, title="E10 — confidence-gated cascade vs exhaustive execution"),
    )
    BENCH_JSON_PATH.write_text(
        json.dumps({"experiment": "E10_cascade_latency", "configurations": rows}, indent=2)
        + "\n",
        encoding="utf-8",
    )

    exhaustive, *cascades = rows
    default = rows[2]
    # Shape: the cascade sends fewer columns to the learned step and is at
    # least as fast, while staying within a small accuracy margin.
    assert default["columns_reaching_learned_step"] < exhaustive["columns_reaching_learned_step"]
    assert default["seconds_total"] <= exhaustive["seconds_total"] * 1.10
    assert default["accuracy"] >= exhaustive["accuracy"] - 0.10
    # A stricter threshold pushes more columns to the expensive step.
    assert rows[3]["columns_reaching_learned_step"] >= rows[1]["columns_reaching_learned_step"]
