"""Shared fixtures for the benchmark/experiment harness.

Each benchmark module reproduces one experiment from DESIGN.md (E1–E11):
it computes the experiment's result rows during setup, times a representative
operation with pytest-benchmark, prints the rows, and appends them to
``benchmarks/results/`` so EXPERIMENTS.md can be cross-checked against an
actual run.

The pretrained system and corpora are session-scoped: they are built once and
shared by all experiments, exactly like the single pretrained global model the
paper deploys across customers.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import SigmaTyper, SigmaTyperConfig
from repro.adaptation import GlobalModelConfig
from repro.corpus import GitTablesConfig, GitTablesGenerator, build_ood_corpus
from repro.nn import MLPConfig

RESULTS_DIR = Path(__file__).parent / "results"

#: Sizes chosen so the full benchmark suite runs in a few minutes on a laptop
#: while still training the learned model on a few hundred columns.
PRETRAIN_TABLES = 90
BACKGROUND_TABLES = 20
TEST_TABLES = 25
MLP_EPOCHS = 30


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def record_result(results_dir):
    """Write an experiment's printed rows to benchmarks/results/<name>.txt."""

    def _record(name: str, text: str) -> None:
        print()
        print(text)
        (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")

    return _record


@pytest.fixture(scope="session")
def train_corpus():
    """The GitTables-like pretraining corpus shared by every experiment."""
    return GitTablesGenerator(
        GitTablesConfig(num_tables=PRETRAIN_TABLES, seed=2024)
    ).generate_corpus()


@pytest.fixture(scope="session")
def background_corpus():
    """OOD background tables used for the unknown class."""
    return build_ood_corpus(num_tables=BACKGROUND_TABLES, seed=2025)


@pytest.fixture(scope="session")
def test_corpus():
    """Held-out GitTables-like evaluation corpus (different seed)."""
    return GitTablesGenerator(GitTablesConfig(num_tables=TEST_TABLES, seed=7777)).generate_corpus()


@pytest.fixture(scope="session")
def sigmatyper(train_corpus, background_corpus) -> SigmaTyper:
    """The pretrained SigmaTyper system (header matching + lookup + learned model)."""
    config = SigmaTyperConfig(
        global_model=GlobalModelConfig(
            mlp=MLPConfig(max_epochs=MLP_EPOCHS, hidden_sizes=(128, 64), seed=3),
            seed=2024,
        )
    )
    return SigmaTyper.pretrained(
        training_corpus=train_corpus,
        background_corpus=background_corpus,
        config=config,
    )
