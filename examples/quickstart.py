"""Quickstart: pretrain SigmaTyper and annotate an enterprise table.

Run with:  python examples/quickstart.py

The script pretrains a (small) global model on the synthetic GitTables-like
corpus — the offline stand-in for the paper's "pretrained on GitTables" — and
then annotates a table that looks like a typical CRM export, printing the
top-k semantic types and confidences per column together with the cascade
trace (which pipeline steps ran for how many columns).
"""

from __future__ import annotations

from repro import SigmaTyper, SigmaTyperConfig, Table
from repro.adaptation import GlobalModelConfig
from repro.nn import MLPConfig


def build_system() -> SigmaTyper:
    """Pretrain a compact SigmaTyper (a couple of seconds on a laptop)."""
    config = SigmaTyperConfig(
        global_model=GlobalModelConfig(
            pretraining_tables=80,
            background_tables=15,
            mlp=MLPConfig(max_epochs=25, hidden_sizes=(128, 64), seed=7),
            seed=11,
        )
    )
    return SigmaTyper.pretrained(config=config)


def crm_export() -> Table:
    """A small table shaped like a CRM export with terse headers."""
    return Table.from_columns_dict(
        {
            "cust_id": ["CUST-10291", "CUST-10292", "CUST-10293", "CUST-10294"],
            "full_name": ["Ana Flores", "Wei Chen", "Sofia Rossi", "Omar Khan"],
            "eml": ["ana@acme.org", "wei.chen@globex.com", "s.rossi@initech.io", "omar@hooli.dev"],
            "country": ["Mexico", "China", "Italy", "Pakistan"],
            "signup_dt": ["2023-04-11", "2022-12-01", "2024-02-27", "2023-08-19"],
            "acct_value": ["12,400", "98,310", "7,950", "55,020"],
            "is_active": ["yes", "yes", "no", "yes"],
        },
        name="crm_accounts",
    )


def main() -> None:
    print("Pretraining the global model on the synthetic GitTables-like corpus ...")
    typer = build_system()
    print(f"Pipeline steps: {typer.global_model.pipeline.step_names}, tau = {typer.tau}\n")

    table = crm_export()
    print("Input table:")
    print(table.preview())
    print()

    prediction = typer.annotate(table)
    print("Predicted semantic column types:")
    for column_prediction in prediction:
        candidates = ", ".join(
            f"{score.type_name}={score.confidence:.2f}" for score in column_prediction.top_k(3)
        )
        marker = " (abstained)" if column_prediction.abstained else ""
        print(
            f"  {column_prediction.column_name:>12}  ->  {column_prediction.predicted_type:<14}"
            f"[{column_prediction.source_step}]{marker}   top-k: {candidates}"
        )

    print("\nCascade trace (columns handled per step):", prediction.step_trace)
    print("Per-step seconds:", {k: round(v, 4) for k, v in prediction.step_seconds.items()})


if __name__ == "__main__":
    main()
