"""Out-of-distribution handling: abstaining instead of guessing.

Run with:  python examples/out_of_distribution_handling.py

Challenge 3 of the paper: a table-understanding system "should avoid inferring
labels" for tables and semantics far from its training distribution, because a
wrong-but-confident label erodes user trust.  This example feeds SigmaTyper a
mix of familiar enterprise columns and columns whose types are outside the
ontology (DNA sequences, chess openings, licence plates, ...), and shows how
the background `unknown` class, the confidence scores, and the tau threshold
combine into abstentions for the unfamiliar columns.
"""

from __future__ import annotations

from repro import SigmaTyper, SigmaTyperConfig, Table
from repro.adaptation import GlobalModelConfig
from repro.corpus import build_ood_corpus
from repro.embedding_model import OODDetector
from repro.nn import MLPConfig


def build_system() -> SigmaTyper:
    config = SigmaTyperConfig(
        global_model=GlobalModelConfig(
            pretraining_tables=70,
            background_tables=20,
            mlp=MLPConfig(max_epochs=25, hidden_sizes=(128, 64), seed=13),
            seed=41,
        )
    )
    return SigmaTyper.pretrained(config=config)


def research_table() -> Table:
    """A table mixing familiar columns with clearly out-of-distribution ones."""
    return Table.from_columns_dict(
        {
            "sample_id": ["S-1001", "S-1002", "S-1003", "S-1004"],
            "collected_on": ["2024-03-01", "2024-03-02", "2024-03-05", "2024-03-09"],
            "lab_city": ["Utrecht", "Leiden", "Delft", "Groningen"],
            "dna_fragment": [
                "ACGTTGCAACGTAGCTAGGTC",
                "TTGACGGATCCAGTACGATCA",
                "CGATCGATTACGGATCCTTGA",
                "GGCATCGTACGATCGGATCCA",
            ],
            "favourite_opening": [
                "Sicilian Defense",
                "Queen's Gambit",
                "Caro-Kann Defense",
                "King's Indian Defense",
            ],
        },
        name="research_samples",
    )


def main() -> None:
    print("Pretraining SigmaTyper (with the background `unknown` class) ...")
    typer = build_system()
    typer.set_tau(0.5)

    table = research_table()
    print(table.preview(), "\n")

    prediction = typer.annotate(table)
    print("Predictions (abstentions marked):")
    for column_prediction in prediction:
        marker = "ABSTAINED — left for manual labeling" if column_prediction.abstained else ""
        top = ", ".join(
            f"{score.type_name}={score.confidence:.2f}" for score in column_prediction.top_k(2)
        )
        print(f"  {column_prediction.column_name:>18} -> {column_prediction.predicted_type:<12} {marker}")
        print(f"  {'':>18}    candidates: {top}")
    print()

    # Quantify abstention behaviour on a larger OOD corpus.
    classifier = typer.global_model.classifier
    assert classifier is not None
    ood_corpus = build_ood_corpus(num_tables=10, seed=77)
    detector = OODDetector(classifier, method="max_softmax", accept_fraction=0.95)
    in_columns = [
        (column, table)
        for table in [research_table()]
        for column in table.columns
        if column.name in ("sample_id", "collected_on", "lab_city")
    ]
    detector.calibrate(in_columns)

    flagged = total = 0
    for ood_table in ood_corpus:
        for column in ood_table.columns:
            if not str(column.semantic_type or "").startswith("ood:"):
                continue
            total += 1
            flagged += detector.is_out_of_distribution(column, ood_table)
    print(f"OOD detector flagged {flagged}/{total} truly out-of-distribution columns "
          f"(threshold = {detector.threshold:.3f})")

    abstentions = sum(
        typer.annotate(ood_table).abstention_rate() * ood_table.num_columns
        for ood_table in ood_corpus
    )
    print(f"Full-pipeline abstentions across the OOD corpus: "
          f"{abstentions:.0f} of {ood_corpus.num_columns} columns")


if __name__ == "__main__":
    main()
