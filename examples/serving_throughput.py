"""Serving walkthrough: execution backends, the profile store, and the
async annotation service.

Run with:  python examples/serving_throughput.py

The script pretrains a compact SigmaTyper, then walks through the three
pieces of the serving layer a production deployment composes:

1. **Execution backends** — the same ``annotate_corpus`` call sharded across
   ``serial`` / ``threaded`` / ``multiprocess`` workers, with identical
   predictions (the multiprocess backend forks, so workers inherit the
   pretrained model without pickling it);
2. **ProfileStore** — a bounded, content-hash-keyed cache that lets
   short-lived tables with recurring content reuse warm derived state
   (profiles, value views, feature vectors) across requests;
3. **AnnotationService** — an asyncio facade that micro-batches concurrent
   requests per customer, so online traffic rides the bulk path without any
   cross-tenant leakage.
"""

from __future__ import annotations

import asyncio
import time

from repro import AnnotationService, ProfileStore, SigmaTyper, SigmaTyperConfig
from repro.adaptation import GlobalModelConfig
from repro.corpus import GitTablesConfig, GitTablesGenerator
from repro.nn import MLPConfig
from repro.serving import available_workers


def build_system() -> SigmaTyper:
    """Pretrain a compact SigmaTyper (a couple of seconds on a laptop)."""
    config = SigmaTyperConfig(
        global_model=GlobalModelConfig(
            pretraining_tables=60,
            background_tables=12,
            mlp=MLPConfig(max_epochs=18, hidden_sizes=(96, 48), seed=7),
            seed=11,
        )
    )
    return SigmaTyper.pretrained(config=config)


def fresh(tables):
    """Copies with cold per-column caches, as incoming requests would carry."""
    return [table.copy() for table in tables]


def demo_backends(typer: SigmaTyper, tables) -> None:
    print(f"-- execution backends ({available_workers()} usable CPUs) " + "-" * 20)
    # Warm the model-level caches once so the timed runs compare sharding
    # strategies, not cache warm-up order.
    typer.annotate_corpus(fresh(tables))
    reference = None
    for backend in ("serial", "threaded:4", "multiprocess:4"):
        batch = fresh(tables)
        started = time.perf_counter()
        predictions = typer.annotate_corpus(batch, backend=backend)
        elapsed = time.perf_counter() - started
        columns = sum(len(p) for p in predictions)
        if reference is None:
            reference = [p.columns for p in predictions]
        else:
            assert [p.columns for p in predictions] == reference, "backends must agree"
        print(f"  {backend:<16} {columns / elapsed:8.0f} columns/s  ({elapsed:.2f}s)")
    print("  all backends returned identical predictions\n")


def demo_profile_store(typer: SigmaTyper, tables) -> None:
    print("-- shared profile store " + "-" * 34)
    store = ProfileStore(max_columns=4096)
    with store.activated():
        for wave in ("cold", "warm"):
            batch = fresh(tables)  # short-lived tables, recurring content
            started = time.perf_counter()
            typer.annotate_corpus(batch)
            elapsed = time.perf_counter() - started
            print(f"  {wave} wave: {elapsed:.2f}s  store={store.stats()}")
    print("  sizing rule of thumb: max_columns ~ distinct columns between repeats\n")


async def demo_service(typer: SigmaTyper, tables) -> None:
    print("-- async annotation service " + "-" * 30)
    typer.register_customer("acme")
    first = tables[0]
    typer.give_feedback("acme", first, first.columns[0].name, "name")

    async with AnnotationService(typer, max_batch_size=16, max_batch_delay=0.01) as service:
        results = await asyncio.gather(
            *[
                service.annotate(table, customer_id="acme" if index % 2 else None)
                for index, table in enumerate(fresh(tables))
            ]
        )
    annotated = sum(len(prediction) for prediction in results)
    print(f"  annotated {annotated} columns across {len(results)} concurrent requests")
    print(f"  batching stats: {service.stats.to_dict()}\n")


def main() -> None:
    print("Pretraining the global model ...")
    typer = build_system()
    tables = list(
        GitTablesGenerator(GitTablesConfig(num_tables=40, seed=2026)).generate_corpus()
    )
    print(f"Serving corpus: {len(tables)} tables\n")

    demo_backends(typer, tables)
    demo_profile_store(typer, tables)
    asyncio.run(demo_service(typer, tables))

    print("Done.  Pick a backend by workload:")
    print("  serial        — single requests, laptops, debugging")
    print("  threaded:N    — shares in-process caches; best when numpy dominates")
    print("  multiprocess:N — CPU-saturating bulk jobs on multi-core machines (fork)")


if __name__ == "__main__":
    main()
