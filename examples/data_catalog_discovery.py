"""Data-catalog discovery: annotate a warehouse of tables with calibrated precision.

Run with:  python examples/data_catalog_discovery.py

The paper motivates table understanding with data search, discovery, and
cataloging.  This example simulates that workload: a "warehouse" of database
tables across several business domains is annotated in bulk, the precision
threshold tau is calibrated on a validation split so the catalog only stores
labels at >= 90% precision, and the resulting semantic-type inventory (the
catalog index) is printed together with quality metrics and throughput.
"""

from __future__ import annotations

from collections import Counter

from repro import SigmaTyper, SigmaTyperConfig
from repro.adaptation import GlobalModelConfig
from repro.corpus import GitTablesConfig, GitTablesGenerator
from repro.evaluation import evaluate_annotator, format_table
from repro.nn import MLPConfig


def build_system() -> SigmaTyper:
    config = SigmaTyperConfig(
        global_model=GlobalModelConfig(
            pretraining_tables=80,
            background_tables=15,
            mlp=MLPConfig(max_epochs=25, hidden_sizes=(128, 64), seed=3),
            seed=31,
        )
    )
    return SigmaTyper.pretrained(config=config)


def main() -> None:
    print("Pretraining SigmaTyper ...")
    typer = build_system()

    # The customer's warehouse: tables from a few domains, held out from training.
    warehouse = GitTablesGenerator(
        GitTablesConfig(
            num_tables=30,
            seed=909,
            themes=("sales_orders", "crm_customers", "finance_transactions", "logistics_shipments"),
        )
    ).generate_corpus()
    validation, catalog_tables = warehouse.split(train_fraction=0.4, seed=1)

    print(f"Warehouse: {len(warehouse)} tables, {warehouse.num_columns} columns "
          f"({len(validation)} used for calibration, {len(catalog_tables)} cataloged)\n")

    tau = typer.calibrate_tau(validation, target_precision=0.9)
    print(f"Calibrated precision threshold tau = {tau:.2f} (target precision 90%)\n")

    result = evaluate_annotator(typer, catalog_tables, name="catalog run")
    print(format_table([result.summary()], title="Catalog annotation quality"))
    print()

    # Build the catalog index: semantic type -> columns discovered.
    inventory: Counter[str] = Counter()
    abstained = 0
    for table in catalog_tables:
        prediction = typer.annotate(table)
        for column_prediction in prediction:
            if column_prediction.abstained:
                abstained += 1
                continue
            inventory[column_prediction.predicted_type] += 1

    rows = [
        {"semantic_type": type_name, "columns_discovered": count}
        for type_name, count in inventory.most_common(15)
    ]
    print(format_table(rows, title="Catalog index (top 15 semantic types)"))
    print(f"\nColumns left unlabeled for manual review (abstentions): {abstained}")

    # A catalog consumer can now answer questions like "where do we store emails?".
    target = "email"
    locations = []
    for table in catalog_tables:
        prediction = typer.annotate(table)
        for column_prediction in prediction:
            if column_prediction.predicted_type == target and not column_prediction.abstained:
                locations.append(f"{table.name}.{column_prediction.column_name}")
    print(f"\nColumns cataloged as `{target}`:")
    for location in locations[:10]:
        print(f"  - {location}")


if __name__ == "__main__":
    main()
