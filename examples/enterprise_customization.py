"""Enterprise customization via DPBD: the Fig. 3 walk-through, end to end.

Run with:  python examples/enterprise_customization.py

A customer ("acme") reviews the predictions for a revenue/salary-style table.
The user corrects one column ("Income" -> salary), SigmaTyper infers labeling
functions from the demonstration, mines its source corpus for weakly labeled
training data, and adapts the customer's local model.  The script shows the
prediction before and after feedback, the inferred labeling functions, the
weight vectors W_g / W_l evolving over repeated feedback, and that a second
customer remains unaffected (tenant isolation).
"""

from __future__ import annotations

from repro import SigmaTyper, SigmaTyperConfig, Table
from repro.adaptation import GlobalModelConfig
from repro.nn import MLPConfig


def build_system() -> SigmaTyper:
    config = SigmaTyperConfig(
        global_model=GlobalModelConfig(
            pretraining_tables=60,
            background_tables=12,
            mlp=MLPConfig(max_epochs=20, hidden_sizes=(96, 48), seed=5),
            seed=23,
        )
    )
    return SigmaTyper.pretrained(config=config)


def fig3_table() -> Table:
    return Table.from_columns_dict(
        {
            "Name": ["Han Phi", "Thomas Do", "Alexis Nan", "Ingrid Berg"],
            "Income": ["$ 50K", "$ 60K", "$ 70K", "$ 65K"],
            "Company": ["nytco", "Adyen", "Sigma", "Globex"],
            "Cities": ["New York", "Amsterdam", "San Francisco", "Oslo"],
        },
        name="fig3_employees",
    )


def show_prediction(title: str, prediction) -> None:
    print(title)
    for column_prediction in prediction:
        print(
            f"  {column_prediction.column_name:>8} -> {column_prediction.predicted_type:<12}"
            f" ({column_prediction.confidence:.2f}, via {column_prediction.source_step})"
        )
    print()


def main() -> None:
    print("Pretraining the shared global model ...")
    typer = build_system()
    typer.register_customer("acme")
    typer.register_customer("globex")  # a second tenant, never gives feedback

    table = fig3_table()
    print(table.preview(), "\n")

    before = typer.annotate(table, customer_id="acme")
    show_prediction("Predictions for customer 'acme' BEFORE feedback:", before)

    print("User relabels the 'Income' column to `salary` (Fig. 3 step ①) ...\n")
    update = typer.give_feedback("acme", table, "Income", "salary", previous_type="revenue")

    print("Inferred labeling functions (Fig. 3 step ②):")
    for function in update.labeling_functions:
        print(f"  - {type(function).__name__:<18} {function.name}")
    print(f"\nWeakly labeled training examples mined from the source corpus (steps ③/④): "
          f"{len(update.weak_labels)}")
    print(f"Total training examples added to the local model: {update.num_training_examples}\n")

    after = typer.annotate(table, customer_id="acme")
    show_prediction("Predictions for customer 'acme' AFTER one correction:", after)

    print("Repeating the correction on further tables increases the local weight W_l:")
    local_model = typer.customer("acme").local_model
    for round_number in range(2, 5):
        typer.give_feedback("acme", table, "Income", "salary")
        weight = local_model.weights.local_weight("salary")
        print(f"  after {round_number} corrections: W_l[salary] = {weight:.2f}, "
              f"W_g[salary] = {1 - weight:.2f}")
    print()

    untouched = typer.annotate(table, customer_id="globex")
    show_prediction("Customer 'globex' (no feedback) still sees the global predictions:", untouched)

    print("Customer summary for 'acme':")
    summary = typer.customer("acme").summary()
    print(f"  feedback events : {summary['feedback']}")
    print(f"  labeling funcs  : {summary['local_model']['labeling_functions']}")
    print(f"  local weights   : {summary['local_model']['local_weights']}")


if __name__ == "__main__":
    main()
