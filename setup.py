"""Setuptools shim.

The pinned toolchain in the offline environment (setuptools 65, no ``wheel``
package) cannot perform PEP 660 editable installs, so this ``setup.py`` lets
``pip install -e . --no-build-isolation --no-use-pep517`` fall back to the
legacy develop-mode install.  All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
